#pragma once

/// \file csv.hpp
/// Tiny CSV writer used to dump waveforms and experiment sweeps for the
/// figure-regeneration benches (plot with any external tool).

#include <ostream>
#include <string>
#include <vector>

namespace waveletic::util {

/// Column-oriented CSV writer.  All columns must have equal length when
/// write() is called; shorter columns are padded with empty cells.
class CsvWriter {
 public:
  /// Adds a column of doubles under `header`.
  void add_column(std::string header, std::vector<double> values);

  /// Adds a column of preformatted strings under `header`.
  void add_text_column(std::string header, std::vector<std::string> values);

  /// Streams the table; returns the stream for chaining.
  std::ostream& write(std::ostream& os) const;

  /// Writes to a file, throwing util::Error if the file cannot be opened.
  void write_file(const std::string& path) const;

  [[nodiscard]] size_t columns() const noexcept { return headers_.size(); }
  [[nodiscard]] size_t rows() const noexcept;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

}  // namespace waveletic::util
