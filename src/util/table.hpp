#pragma once

/// \file table.hpp
/// ASCII table renderer used by the benches to print paper-style result
/// tables (e.g. the Table 1 reproduction).

#include <ostream>
#include <string>
#include <vector>

namespace waveletic::util {

/// Row-oriented fixed-grid ASCII table with a header row.
///
///   Table t({"Method", "Max", "Avg"});
///   t.add_row({"SGDP", "38.3", "9.2"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Optional caption printed above the grid.
  void set_title(std::string title) { title_ = std::move(title); }

  std::ostream& print(std::ostream& os) const;

  [[nodiscard]] size_t rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace waveletic::util
