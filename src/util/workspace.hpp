#pragma once

/// \file workspace.hpp
/// Bump arena of doubles for numeric scratch buffers — the backing
/// store of the allocation-free propagation hot path.
///
/// Ownership model: one Workspace per worker thread (the levelized STA
/// engine keeps one per ThreadPool worker).  `alloc()` bumps a cursor;
/// `scope()` returns an RAII mark that rewinds the cursor on
/// destruction, so nested fits reuse the same slabs.  Slabs are never
/// freed before the Workspace dies and their addresses are stable under
/// moves, which lets views outlive intermediate scopes within a fit.
///
/// Not thread-safe: a Workspace belongs to exactly one worker.
///
/// The waveform layer re-exports this as wave::Workspace (kernels.hpp);
/// the la fitting layer draws its Gauss–Newton scratch from it too.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace waveletic::util {

class Workspace {
 public:
  struct Stats {
    uint64_t slab_allocations = 0;  ///< heap allocations performed
    uint64_t slab_doubles = 0;      ///< total doubles owned by slabs
    uint64_t alloc_calls = 0;       ///< alloc() invocations served
    uint64_t doubles_served = 0;    ///< total doubles handed out
  };

  Workspace() = default;
  Workspace(Workspace&&) noexcept = default;
  Workspace& operator=(Workspace&&) noexcept = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Uninitialized scratch span of `n` doubles, valid until the
  /// enclosing Scope is destroyed (or forever when no scope is open).
  [[nodiscard]] std::span<double> alloc(size_t n);

  /// RAII cursor mark: destruction rewinds the arena to the state at
  /// construction, reclaiming (but not freeing) everything allocated
  /// inside.  Scopes must nest like stack frames.
  class Scope {
   public:
    explicit Scope(Workspace& ws) noexcept
        : ws_(&ws), slab_(ws.slab_), used_(ws.used_) {}
    ~Scope() {
      if (ws_ != nullptr) {
        ws_->slab_ = slab_;
        ws_->used_ = used_;
      }
    }
    Scope(Scope&& o) noexcept : ws_(o.ws_), slab_(o.slab_), used_(o.used_) {
      o.ws_ = nullptr;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope& operator=(Scope&&) = delete;

   private:
    Workspace* ws_;
    size_t slab_;
    size_t used_;
  };
  [[nodiscard]] Scope scope() noexcept { return Scope(*this); }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  /// Heap allocations performed so far — the number a warmed workspace
  /// must stop increasing (asserted by bench_runtime and tests).
  [[nodiscard]] uint64_t heap_allocations() const noexcept {
    return stats_.slab_allocations;
  }

 private:
  struct Slab {
    std::unique_ptr<double[]> data;
    size_t capacity = 0;
  };

  static constexpr size_t kMinSlabDoubles = 8192;  // 64 KiB

  std::vector<Slab> slabs_;
  size_t slab_ = 0;  ///< index of the slab the cursor sits in
  size_t used_ = 0;  ///< doubles consumed in that slab
  Stats stats_;
};

}  // namespace waveletic::util
