#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace waveletic::util {

size_t ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

ThreadPool::ThreadPool(int threads) {
  size_ = threads <= 0 ? hardware_threads()
                       : static_cast<size_t>(threads);
  size_ = std::max<size_t>(size_, 1);
  // Worker 0 is the calling thread; only size_-1 helpers are spawned.
  workers_.reserve(size_ - 1);
  for (size_t i = 1; i < size_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunk(size_t worker_index, const Job& job) noexcept {
  if (job.graph_run != nullptr) {
    graph_worker(worker_index, *job.graph_run);
    return;
  }
  // Static contiguous partition of [0, n) into size_ chunks.
  const size_t per = (job.n + size_ - 1) / size_;
  const size_t begin = std::min(worker_index * per, job.n);
  const size_t end = std::min(begin + per, job.n);
  try {
    if (job.body_worker != nullptr) {
      for (size_t i = begin; i < end; ++i) {
        (*job.body_worker)(worker_index, i);
      }
    } else {
      for (size_t i = begin; i < end; ++i) (*job.body)(i);
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::worker_loop(size_t worker_index) {
  uint64_t seen_generation = 0;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    run_chunk(worker_index, job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(size_t n,
                              const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (size_ == 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  dispatch(Job{&body, nullptr, n});
}

void ThreadPool::parallel_for(
    size_t n, const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (size_ == 1 || n == 1) {
    // Chunk 0 always runs on the calling thread.
    for (size_t i = 0; i < n; ++i) body(0, i);
    return;
  }
  dispatch(Job{nullptr, &body, n});
}

void ThreadPool::graph_worker(size_t worker_index, GraphRun& run) noexcept {
  const TaskGraph& g = *run.graph;
  const size_t tile_size = g.tile_size();
  const size_t total = g.total();
  std::unique_lock<std::mutex> lock(run.mutex);
  for (;;) {
    if (run.completed == total) return;
    if (run.ready.empty()) {
      // Remaining tasks are blocked on tasks other workers are
      // executing; wait for a completion to unlock some.  If nothing is
      // in flight either, the graph has a dependency cycle — bail out
      // and let run_graph report completed < total.
      if (run.in_flight == 0) {
        run.cv.notify_all();
        return;
      }
      run.cv.wait(lock, [&] {
        return run.completed == total || !run.ready.empty() ||
               run.in_flight == 0;
      });
      continue;
    }
    const uint32_t task = run.ready.back();
    run.ready.pop_back();
    ++run.in_flight;
    lock.unlock();
    if (!run.cancelled.load(std::memory_order_relaxed)) {
      try {
        (*run.body)(worker_index, task);
      } catch (...) {
        run.cancelled.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> elock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
    lock.lock();
    ++run.completed;
    --run.in_flight;
    const size_t tile_base = (task / tile_size) * tile_size;
    size_t unlocked = 0;
    for (const uint32_t succ : g.successors[task % tile_size]) {
      if (--run.pending[tile_base + succ] == 0) {
        run.ready.push_back(static_cast<uint32_t>(tile_base + succ));
        ++unlocked;
      }
    }
    if (run.completed == total) {
      run.cv.notify_all();
    } else if (unlocked > 1) {
      run.cv.notify_all();
    } else if (unlocked == 1) {
      run.cv.notify_one();
    }
  }
}

void ThreadPool::run_graph(const TaskGraph& graph,
                           const std::function<void(size_t, size_t)>& body) {
  const size_t total = graph.total();
  if (total == 0) return;
  GraphRun run;
  run.graph = &graph;
  run.body = &body;
  run.pending.resize(total);
  const size_t tile_size = graph.tile_size();
  for (size_t tile = 0; tile < graph.tiles; ++tile) {
    for (size_t t = 0; t < tile_size; ++t) {
      run.pending[tile * tile_size + t] = graph.indegree[t];
      if (graph.indegree[t] == 0) {
        run.ready.push_back(static_cast<uint32_t>(tile * tile_size + t));
      }
    }
  }
  require(!run.ready.empty(), "run_graph: no root tasks (dependency cycle)");
  if (size_ == 1) {
    // Inline execution on the calling thread, same cancel semantics.
    graph_worker(0, run);
    std::lock_guard<std::mutex> lock(mutex_);
    if (first_error_) {
      auto err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
  } else {
    dispatch(Job{nullptr, nullptr, 0, &run});
  }
  require(run.completed == total,
          "run_graph: task graph stalled with ", total - run.completed,
          " tasks blocked (dependency cycle)");
}

void ThreadPool::dispatch(const Job& job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    first_error_ = nullptr;
    pending_ = size_ - 1;  // helper chunks; chunk 0 runs here
    ++generation_;
  }
  start_cv_.notify_all();
  run_chunk(0, job_);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    if (first_error_) {
      auto err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
  }
}

}  // namespace waveletic::util
