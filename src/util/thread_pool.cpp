#include "util/thread_pool.hpp"

#include <algorithm>

namespace waveletic::util {

size_t ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

ThreadPool::ThreadPool(int threads) {
  size_ = threads <= 0 ? hardware_threads()
                       : static_cast<size_t>(threads);
  size_ = std::max<size_t>(size_, 1);
  // Worker 0 is the calling thread; only size_-1 helpers are spawned.
  workers_.reserve(size_ - 1);
  for (size_t i = 1; i < size_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunk(size_t worker_index, const Job& job) noexcept {
  // Static contiguous partition of [0, n) into size_ chunks.
  const size_t per = (job.n + size_ - 1) / size_;
  const size_t begin = std::min(worker_index * per, job.n);
  const size_t end = std::min(begin + per, job.n);
  try {
    if (job.body_worker != nullptr) {
      for (size_t i = begin; i < end; ++i) {
        (*job.body_worker)(worker_index, i);
      }
    } else {
      for (size_t i = begin; i < end; ++i) (*job.body)(i);
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::worker_loop(size_t worker_index) {
  uint64_t seen_generation = 0;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    run_chunk(worker_index, job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(size_t n,
                              const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (size_ == 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  dispatch(Job{&body, nullptr, n});
}

void ThreadPool::parallel_for(
    size_t n, const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (size_ == 1 || n == 1) {
    // Chunk 0 always runs on the calling thread.
    for (size_t i = 0; i < n; ++i) body(0, i);
    return;
  }
  dispatch(Job{nullptr, &body, n});
}

void ThreadPool::dispatch(const Job& job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    first_error_ = nullptr;
    pending_ = size_ - 1;  // helper chunks; chunk 0 runs here
    ++generation_;
  }
  start_cv_.notify_all();
  run_chunk(0, job_);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    if (first_error_) {
      auto err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
  }
}

}  // namespace waveletic::util
