#include "util/strings.hpp"

#include <algorithm>
#include <cctype>

namespace waveletic::util {

namespace {
bool is_space(char c) noexcept {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string_view> split(std::string_view s,
                                    std::string_view delims) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (start < s.size()) {
    const size_t pos = s.find_first_of(delims, start);
    const size_t end = (pos == std::string_view::npos) ? s.size() : pos;
    if (end > start) out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::vector<std::string_view> split_keep_empty(std::string_view s,
                                               char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace waveletic::util
