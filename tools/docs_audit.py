#!/usr/bin/env python3
"""Public-API documentation audit for the sweep-surface headers.

Walks the audited headers and reports every *public* symbol (type,
member function, data member, enumerator, alias) that carries neither a
preceding `///` Doxygen block nor a trailing `///<` comment.  CI runs
this as the hard gate of the docs job — the full Doxygen build is
advisory (warn-only), this script is not.

The parser is a deliberately small line-based state machine tuned to
this repo's clang-format style (it is NOT a general C++ parser):

  - scopes open with a `{` at the end of a declaration and close with a
    line starting `}`;
  - inline function bodies are skipped by brace counting;
  - `private:`/`protected:` sections, friend declarations, forward
    declarations and `= default`/`= delete` members are exempt.

Usage:  python3 tools/docs_audit.py [header...]
Exit status is the number of undocumented public symbols (0 = clean).
"""

import re
import sys

DEFAULT_HEADERS = [
    "src/sta/sweep.hpp",
    "src/sta/scengen.hpp",
    "src/interconnect/coupled.hpp",
    "src/sta/ids.hpp",
    "src/sta/service.hpp",
    "src/sta/edits.hpp",
    "src/sta/macromodel.hpp",
    "src/sta/hiergraph.hpp",
    "src/wave/lanes.hpp",
    "src/wave/kernels.hpp",
]

DOC_LINE = re.compile(r"^///(?!<)")
ACCESS = re.compile(r"^(public|private|protected)\s*:")
OPEN_SCOPE = re.compile(
    r"^(?:template\s*<[^>]*>\s*)?"
    r"(?P<kind>namespace|class|struct|enum(?:\s+(?:class|struct))?)\b"
    r"\s*(?P<name>[A-Za-z_][\w:]*)?"
)
FORWARD_DECL = re.compile(r"^(?:class|struct|enum(?:\s+class)?)\s+[A-Za-z_]\w*$")
EXEMPT = re.compile(r"(\bfriend\b|= *default\b|= *delete\b|\bstatic_assert\b)")


class Scope:
    def __init__(self, kind, access, visible):
        self.kind = kind  # "namespace" | "class" | "enum"
        self.access = access  # current access inside the scope
        self.visible = visible  # the scope itself is public API


def base_kind(kind):
    if kind == "namespace":
        return "namespace"
    if kind.startswith("enum"):
        return "enum"
    return "class"


def audit_file(path, findings):
    with open(path, encoding="utf-8") as f:
        lines = f.readlines()

    stack = []  # Scope
    depth = 0  # brace depth of open scopes + skipped bodies
    body_until = None  # skip lines until depth returns to this value
    doc = False  # a /// block immediately precedes the next symbol
    decl = None  # accumulating declaration: [lineno, text, documented]

    def public_here():
        if not stack:
            return True
        top = stack[-1]
        if top.kind == "namespace":
            return top.visible
        return top.visible and top.access == "public"

    def flag(lineno, head):
        findings.append((path, lineno, re.sub(r"\s+", " ", head.strip())[:72]))

    def check(lineno, head, documented, is_definition=False):
        head = head.strip()
        if not head or EXEMPT.search(head):
            return
        if not is_definition and FORWARD_DECL.match(head):
            return
        if head.startswith("using namespace"):
            return
        if not documented:
            flag(lineno, head)

    for lineno, raw in enumerate(lines, 1):
        stripped = raw.strip()

        if body_until is not None:
            depth += stripped.count("{") - stripped.count("}")
            if depth <= body_until:
                body_until = None
            continue

        if not stripped:
            if decl is None:
                doc = False
            continue
        if stripped.startswith("//"):
            if DOC_LINE.match(stripped):
                doc = True
            continue
        if stripped.startswith("#"):
            doc = False
            continue

        m = ACCESS.match(stripped)
        if m and stack and stack[-1].kind == "class":
            stack[-1].access = m.group(1)
            doc = False
            continue

        if stripped.startswith("}"):
            if stack:
                stack.pop()
            depth = max(depth - 1, 0)
            doc = False
            decl = None
            continue

        # Enumerators: one per line inside an enum scope.
        if stack and stack[-1].kind == "enum":
            if public_here() and "///<" not in stripped and not doc:
                flag(lineno, stripped.rstrip(","))
            doc = False
            continue

        if decl is None:
            decl = [lineno, "", doc]
        doc = False
        decl[1] += " " + stripped
        text = decl[1]
        semi = text.find(";")
        brace = text.find("{")
        if semi == -1 and brace == -1:
            continue  # declaration continues on the next line

        documented = decl[2] or "///<" in text
        if brace != -1 and (semi == -1 or brace < semi):
            head = text[:brace]
            m = OPEN_SCOPE.match(head.strip())
            if m:  # opens a type or namespace scope
                kind = base_kind(m.group("kind"))
                if kind != "namespace" and public_here():
                    check(decl[0], head, documented, is_definition=True)
                stack.append(
                    Scope(
                        kind,
                        "private" if m.group("kind") == "class" else "public",
                        public_here(),
                    )
                )
                depth += 1
            else:  # inline function body (or brace initializer)
                if public_here():
                    check(decl[0], head, documented)
                opens = text.count("{") - text.count("}")
                if opens > 0:
                    body_until = depth
                    depth += opens
        else:
            if public_here():
                check(decl[0], text[:semi], documented)
        decl = None

    return findings


def main(argv):
    headers = argv[1:] or DEFAULT_HEADERS
    findings = []
    for path in headers:
        audit_file(path, findings)
    for path, lineno, head in findings:
        print(f"{path}:{lineno}: undocumented public symbol: {head}")
    if findings:
        print(f"\n{len(findings)} undocumented public symbol(s). "
              "Every public type/member of the audited headers needs a /// "
              "Doxygen comment (or ///< for data members).")
    else:
        print(f"docs audit clean: {', '.join(headers)}")
    return min(len(findings), 99)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
