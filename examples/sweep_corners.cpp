// Multi-corner × noise-scenario sweep demo: the unified Sweep surface.
//
//   1. characterize the cell library,
//   2. build a multi-chain netlist, constrain it through PortId
//      handles, and run clean STA,
//   3. build a noise-scenario axis (aggressor alignment grid on one
//      victim net) and a corner axis (nominal / slow / slow-wire
//      derates),
//   4. evaluate the full corners × scenarios cross product in ONE
//      baseline + delta pass with StaEngine::sweep(), under
//      PruneMode::kSafe slack-bound pruning,
//   5. print the slack matrix (pruned points show their proven bound),
//      the worst point, its critical path, the prune/delta statistics,
//      and the Γeff cache statistics.
//
//   $ ./sweep_corners

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "charlib/characterize.hpp"
#include "netlist/generators.hpp"
#include "sta/engine.hpp"
#include "sta/sweep.hpp"

namespace cl = waveletic::charlib;
namespace nl = waveletic::netlist;
namespace st = waveletic::sta;
namespace wv = waveletic::wave;

int main() {
  std::cout << "characterizing library...\n";
  const auto lib = cl::build_vcl013_library_fast();

  const int width = 6;
  const auto netlist = nl::make_chain_tree(width);

  st::StaEngine sta(netlist, lib);
  // a0 arrives last so the noisy chain 0 carries the critical path.
  for (int i = 0; i < width; ++i) {
    sta.set_input(sta.port("a" + std::to_string(i)),
                  0.01e-9 * (width - i), (90 + 6 * i) * 1e-12);
  }
  sta.set_output_load(sta.port("y"), 6e-15);
  sta.set_required(sta.port("y"), 2e-9);
  sta.run();

  // Victim ramp for the scenario axis, read through a PinId handle.
  const st::PinId victim = sta.pin("inv0_2/A");
  const auto& v = sta.timing(victim, st::RiseFall::kFall);

  st::SweepSpec spec;
  st::Corner slow;
  slow.name = "slow";
  slow.cell_delay_scale = 1.15;
  slow.cell_slew_scale = 1.10;
  st::Corner slow_wire;
  slow_wire.name = "slow-wire";
  slow_wire.cell_delay_scale = 1.05;
  slow_wire.wire_delay_scale = 1.40;
  spec.corners = {st::Corner{}, slow, slow_wire};
  for (int a = 0; a < 8; ++a) {
    spec.scenarios.push_back(st::make_aggressor_scenario(
        "c0_1", v.arrival, v.slew, lib.nom_voltage, wv::Polarity::kFalling,
        (a - 4) * 15e-12, 0.45));
  }
  spec.threads = 0;  // hardware concurrency
  spec.prune = st::PruneMode::kSafe;  // delta is on by default

  const auto result = sta.sweep(spec);

  std::printf("\n-- %zu corners x %zu scenarios = %zu points, "
              "one baseline + delta pass --\n",
              result.num_corners(), result.num_scenarios(), result.size());
  std::printf("%-34s", "scenario \\ corner");
  for (size_t c = 0; c < result.num_corners(); ++c) {
    std::printf(" %12s", result.corner(c).name.c_str());
  }
  std::printf("\n");
  for (size_t s = 0; s < result.num_scenarios(); ++s) {
    std::printf("%-34s", result.scenario_name(s).c_str());
    for (size_t c = 0; c < result.num_corners(); ++c) {
      const size_t p = result.point(c, s);
      if (result.pruned(p)) {
        // No timing was computed, but the bound proves it can't be
        // the worst point.
        std::printf("  >=%6.1f ps*", result.worst_slack_bound(p) * 1e12);
      } else {
        std::printf(" %9.1f ps ", result.worst_slack(p) * 1e12);
      }
    }
    std::printf("\n");
  }

  const auto worst = result.worst_point();
  std::printf("\nworst point: corner '%s', scenario '%s', slack %.1f ps\n",
              result.corner(worst.corner).name.c_str(),
              result.scenario_name(worst.scenario).c_str(),
              worst.slack * 1e12);
  std::printf("critical path:");
  for (const auto& step : result.critical_path(worst.point)) {
    std::printf(" %s(%s)", step.pin.c_str(), st::to_string(step.rf));
  }
  std::printf("\n");

  // Canonical PruneStats rendering (field names match docs/SWEEP_GUIDE.md;
  // * above = pruned, proven bound shown instead of a slack).
  std::printf("\n%s\n",
              st::format_prune_stats(result.prune_stats()).c_str());

  const auto stats = result.cache_stats();
  std::printf("Γeff memo: %llu hits, %llu misses\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses));
  return 0;
}
