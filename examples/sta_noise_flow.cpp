// End-to-end STA integration demo (the paper's "easily incorporated
// into commercial STA tools" claim):
//   1. characterize the cell library through the transient simulator,
//   2. parse a structural-Verilog netlist,
//   3. run clean STA,
//   4. annotate one net with a crosstalk-distorted waveform taken from
//      the golden coupled-line simulation,
//   5. re-run with the pluggable equivalent-waveform technique (SGDP)
//      and compare the timing reports.
//
//   $ ./sta_noise_flow

#include <iostream>

#include "charlib/characterize.hpp"
#include "netlist/verilog.hpp"
#include "noise/scenario.hpp"
#include "sta/engine.hpp"
#include "util/units.hpp"
#include "wave/metrics.hpp"

namespace cl = waveletic::charlib;
namespace nl = waveletic::netlist;
namespace no = waveletic::noise;
namespace st = waveletic::sta;
namespace wu = waveletic::util;
namespace wv = waveletic::wave;

int main() {
  std::cout << "characterizing library...\n";
  const auto lib = cl::build_vcl013_library_fast();

  const auto netlist = nl::parse_verilog(R"(
// victim receiver chain: the noisy net n1 feeds u2
module noisy_path (a, y);
  input a;
  output y;
  wire n1, n2;
  INVX1 u1 (.A(a), .Y(n1));
  INVX4 u2 (.A(n1), .Y(n2));
  INVX4 u3 (.A(n2), .Y(y));
endmodule
)");

  st::StaEngine sta(netlist, lib);
  sta.set_input("a", 0.0, 150e-12);
  sta.set_output_load("y", 10e-15);
  sta.set_required("y", 0.6e-9);
  sta.run();
  std::cout << "\n-- clean run --\n" << sta.report();
  const double clean_arrival =
      sta.timing("y", st::RiseFall::kFall).arrival;

  // Golden coupled-line simulation provides the noisy waveform seen at
  // the far end of the victim net (Configuration I, aligned aggressor).
  std::cout << "simulating coupled interconnect for the noisy waveform "
               "on n1...\n";
  const cl::Pdk pdk;
  auto spec = no::TestbenchSpec::config1();
  spec.victim_t50 = 1.5e-9;
  no::RunnerOptions ropt;
  ropt.dt = 2e-12;
  no::NoiseRunner runner(pdk, spec, ropt);
  auto cw = runner.run_case(0.0);

  // Re-time the waveform so its clean part lines up with the STA
  // arrival on n1 (the annotation describes the same transition).
  const auto& n1 = sta.timing("u2/A", st::RiseFall::kFall);
  const double golden_clean_arrival = *wv::arrival_50(
      runner.noiseless_in(), cw.in_polarity, pdk.vdd);
  const auto retimed =
      cw.noisy_in.shifted(n1.arrival - golden_clean_arrival);

  sta.annotate_noisy_net("n1", retimed, wv::Polarity::kFalling);
  sta.run();
  std::cout << "\n-- with crosstalk annotation on n1 (SGDP) --\n"
            << sta.report();
  const double noisy_arrival =
      sta.timing("y", st::RiseFall::kFall).arrival;

  std::cout << "\ncrosstalk push-out through the full path: "
            << wu::format_ps(noisy_arrival - clean_arrival) << " ps\n";
  return 0;
}
