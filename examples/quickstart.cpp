// Quickstart: fit an equivalent waveform (Γeff) to a noisy transition
// with every technique from the paper and print the resulting STA
// quantities (arrival, slew).  Pure-waveform demo — no circuit
// simulation involved, runs instantly.
//
//   $ ./quickstart

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/method.hpp"
#include "wave/ramp.hpp"
#include "wave/waveform.hpp"

namespace co = waveletic::core;
namespace wv = waveletic::wave;

int main() {
  const double vdd = 1.2;

  // A clean 150 ps rising transition crossing 50% at t = 1 ns...
  const wv::Waveform clean_in =
      wv::Ramp::from_arrival_slew(1e-9, 150e-12, vdd).sampled(512);
  // ...the receiving gate's noiseless response (overlapping, sharper)...
  const wv::Waveform clean_out =
      wv::Ramp::from_arrival_slew(1.03e-9, 120e-12, vdd).sampled(512);

  // ...and the same input distorted by a crosstalk dip that re-crosses
  // the 50% level (the delay-noise scenario of the paper).
  std::vector<double> t(clean_in.times().begin(), clean_in.times().end());
  std::vector<double> v(clean_in.values().begin(), clean_in.values().end());
  for (size_t i = 0; i < t.size(); ++i) {
    v[i] -= 0.75 * std::exp(-std::pow((t[i] - 1.12e-9) / 35e-12, 2.0));
  }
  const wv::Waveform noisy_in(std::move(t), std::move(v));

  std::printf("noisy input: %zu crossings of 0.5*Vdd, latest at %.1f ps\n",
              noisy_in.crossings(0.5 * vdd).size(),
              *noisy_in.last_crossing(0.5 * vdd) * 1e12);
  std::printf("%-6s %12s %12s %s\n", "method", "arrival(ps)", "slew(ps)",
              "fallback");

  co::MethodInput input;
  input.noisy_in = &noisy_in;
  input.noiseless_in = &clean_in;
  input.noiseless_out = &clean_out;
  input.in_polarity = wv::Polarity::kRising;
  input.out_polarity = wv::Polarity::kRising;
  input.vdd = vdd;
  input.samples = 35;  // the paper's P

  for (const auto& method : co::all_methods()) {
    const auto fit = method->fit(input);
    std::printf("%-6s %12.1f %12.1f %s\n",
                std::string(method->name()).c_str(), fit.ramp.t50() * 1e12,
                fit.ramp.slew() * 1e12,
                fit.degenerate_fallback ? "yes" : "");
  }
  std::printf("\nSGDP weighs samples by the gate's sensitivity at the\n"
              "*noisy* voltage (Step 2), so the dip that re-crosses 50%%\n"
              "moves its arrival while staying slew-accurate.\n");
  return 0;
}
