// Hierarchical macro-model flow at toy scale: characterize a small
// block into a port-level macro-model, stitch several copies with one
// expanded flat, sweep noise scenarios over the stitched design, and
// lower a bump annotated inside an abstracted copy onto its interface.
//
//   $ ./hier_sweep

#include <iostream>

#include "charlib/characterize.hpp"
#include "netlist/generators.hpp"
#include "sta/hiergraph.hpp"
#include "sta/macromodel.hpp"
#include "sta/sweep.hpp"
#include "util/units.hpp"

namespace cl = waveletic::charlib;
namespace nl = waveletic::netlist;
namespace st = waveletic::sta;
namespace wu = waveletic::util;
namespace wv = waveletic::wave;

namespace {

void constrain(st::StaEngine& sta, const nl::Netlist& top) {
  int i = 0;
  for (const auto& port : top.ports()) {
    if (port.direction == nl::PortDirection::kInput) {
      sta.set_input(port.name, 0.01e-9 * i, (80 + 10 * (i % 5)) * 1e-12);
      ++i;
    } else {
      sta.set_output_load(port.name, 5e-15);
      sta.set_required(port.name, 2.5e-9);
    }
  }
}

}  // namespace

int main() {
  const auto lib = cl::build_vcl013_library_fast();

  // 1. The block: a small random DAG standing in for a reused layout
  //    macro (a carved partition works the same — see carve_block).
  const nl::Netlist block = nl::make_random_dag(11, 4, 6, 5);
  std::cout << "block: " << block.instances().size() << " instances, "
            << block.ports().size() << " ports\n";

  // 2. Characterize it once into port-to-port NLDM tables + noise
  //    transfers.
  const st::BlockModel model = st::extract_block_model(block, lib);
  std::cout << "macro-model: " << model.arcs.size() << " interface arcs, "
            << model.transfers.size() << " noise transfers\n";

  // 3. Stitch 6 copies — copy 0 stays gate-level, the rest become one
  //    macro instance each.
  nl::StitchOptions sopt;
  sopt.copies = 6;
  sopt.expanded = 0;
  auto hier = st::HierDesign::build(block, lib, model, sopt);
  std::cout << "stitched: " << hier.stitched_vertex_count()
            << " flat-equivalent vertices held as "
            << "hierarchical graph of " << sopt.copies << " copies\n";

  // 4. Constrain and analyze exactly like a flat engine.
  constrain(hier.engine(), hier.netlist());
  hier.engine().run();
  std::cout << "hier vertices after prepare: " << hier.hier_vertex_count()
            << ", clean WNS " << wu::format_ps(hier.engine().worst_slack())
            << "\n";

  // 5. Sweep aggressor scenarios on a net inside the expanded copy
  //    (abstracted copies are single macro instances — skip them).
  const nl::Instance* victim = nullptr;
  for (const auto& cand : hier.netlist().instances()) {
    if (cand.name.rfind("u0/", 0) == 0 && cand.pins.count("A") != 0)
      victim = &cand;
  }
  const auto& inst = *victim;
  const auto& vt = hier.engine().timing(inst.name + "/A", st::RiseFall::kFall);
  st::SweepSpec spec;
  for (int i = 0; i < 8; ++i) {
    spec.scenarios.push_back(st::make_aggressor_scenario(
        inst.pins.at("A"), vt.arrival, vt.slew, lib.nom_voltage,
        wv::Polarity::kFalling, i * 60e-12, 0.25 + 0.05 * (i % 3)));
  }
  const auto result = hier.sweep(spec);
  const auto worst = result.worst_point();
  std::cout << "swept " << spec.scenarios.size() << " scenarios, worst '"
            << spec.scenarios[worst.scenario].name << "' slack "
            << wu::format_ps(worst.slack) << "\n";

  // 6. A bump inside an *abstracted* copy has no vertex to land on:
  //    lower it onto the copy's interface by first-order sensitivity.
  const std::string inner = hier.model().transfers.front().net;
  const auto lowered = hier.lower_interior_bump(1, inner, 0.3);
  std::cout << "lowered a 0.3 V bump on u1-interior net '" << inner
            << "' onto " << lowered.entries.size()
            << " interface net(s)\n";
  return 0;
}
