// Characterizes the VCL013 virtual cell library through the built-in
// transient simulator and writes it as a Liberty file — the same flow a
// foundry characterization team runs, at toy scale.
//
//   $ ./characterize_lib [output.lib]   (env WAVELETIC_FAST=1 for the
//                                        reduced grid)

#include <cstdlib>
#include <iostream>

#include "charlib/characterize.hpp"
#include "liberty/parser.hpp"
#include "liberty/writer.hpp"
#include "util/units.hpp"

namespace cl = waveletic::charlib;
namespace lb = waveletic::liberty;
namespace wu = waveletic::util;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "vcl013.lib";
  const bool fast = [] {
    const char* f = std::getenv("WAVELETIC_FAST");
    return f && f[0] == '1';
  }();

  std::cout << "characterizing VCL013 (" << (fast ? "fast" : "full")
            << " grid) through the transient simulator...\n";
  const lb::Library lib =
      fast ? cl::build_vcl013_library_fast() : cl::build_vcl013_library();

  lb::write_liberty_file(path, lib);
  std::cout << "wrote " << path << " with " << lib.cells.size()
            << " cells\n\n";

  // Round-trip sanity + a taste of the data.
  const auto reparsed = lb::parse_liberty_file(path);
  std::cout << "cell            in-cap(fF)   delay(ps) @ 150ps/10fF\n";
  for (const auto& cell : reparsed.cells) {
    const auto inputs = cell.input_pins();
    if (inputs.empty()) continue;
    const auto& arc = cell.output_pin().arcs[0];
    const auto lookup = arc.rise(150e-12, 10e-15);
    std::cout << "  " << cell.name;
    for (size_t i = cell.name.size(); i < 14; ++i) std::cout << ' ';
    std::cout << wu::format_ps(inputs[0]->capacitance * 1e3) << "        "
              << wu::format_ps(lookup.delay) << "\n";
  }
  return 0;
}
