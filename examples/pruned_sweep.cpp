// Cone-limited incremental scenario propagation + slack-bound pruning
// demo: the FRAME-style screen-before-exact-analysis flow.
//
//   1. characterize the cell library and build a random layered DAG
//      (many output cones, varied fanout),
//   2. build a large scenario axis: aggressor bumps on many victim
//      nets, from perfectly aligned (critical) to far-offset
//      (harmless),
//   3. sweep it three ways — legacy full re-propagation, baseline +
//      delta (cone-limited), and delta + PruneMode::kSafe — timing
//      each,
//   4. verify all three agree on the exact worst point, and print the
//      per-scenario bound vs. exact slack table plus PruneStats.
//
//   $ ./pruned_sweep

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "charlib/characterize.hpp"
#include "netlist/generators.hpp"
#include "sta/engine.hpp"
#include "sta/sweep.hpp"

namespace cl = waveletic::charlib;
namespace nl = waveletic::netlist;
namespace st = waveletic::sta;
namespace wv = waveletic::wave;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void constrain(st::StaEngine& sta, const nl::Netlist& netlist) {
  int i = 0;
  int o = 0;
  for (const auto& port : netlist.ports()) {
    if (port.direction == nl::PortDirection::kInput) {
      sta.set_input(port.name, 0.008e-9 * i, (75 + 9 * (i % 13)) * 1e-12);
      ++i;
    } else {
      sta.set_output_load(port.name, (4 + (o % 3)) * 1e-15);
      sta.set_required(port.name, 2.5e-9);
      ++o;
    }
  }
}

}  // namespace

int main() {
  std::printf("characterizing library...\n");
  const auto lib = cl::build_vcl013_library_fast();
  const auto netlist = nl::make_random_dag(99, 10, 7, 12);

  st::StaEngine clean(netlist, lib);
  constrain(clean, netlist);
  clean.run();

  // Scenario axis: one bump per victim gate-input net, sweeping the
  // aggressor alignment from dead-on to ~1 ns late.  Far alignments
  // barely perturb the crossing, so their push-out bound is tiny — the
  // pruner's prey.
  st::SweepSpec spec;
  int v = 0;
  for (const auto& inst : netlist.instances()) {
    const auto& t = clean.timing(inst.name + "/A", st::RiseFall::kFall);
    if (!t.valid || t.slew <= 0.0) continue;
    const double align = (v % 8) * 140e-12;  // 0 .. ~1 ns late
    spec.scenarios.push_back(st::make_aggressor_scenario(
        inst.pins.at("A"), t.arrival, t.slew, lib.nom_voltage,
        wv::Polarity::kFalling, align, 0.45));
    ++v;
  }
  spec.threads = 0;

  st::StaEngine sta(netlist, lib);
  constrain(sta, netlist);

  auto timed_sweep = [&](const char* label) {
    const auto t0 = std::chrono::steady_clock::now();
    auto result = sta.sweep(spec);
    const double dt = seconds_since(t0);
    std::printf("%-28s %7.1f ms  (%5.0f scenarios/sec)\n", label, dt * 1e3,
                static_cast<double>(result.size()) / dt);
    return result;
  };

  std::printf("\n-- %zu scenarios over %zu vertices --\n",
              spec.scenarios.size(), sta.vertex_count());
  spec.delta = false;
  const auto full = timed_sweep("full re-propagation:");
  spec.delta = true;
  const auto delta = timed_sweep("baseline + delta:");
  spec.prune = st::PruneMode::kSafe;
  const auto pruned = timed_sweep("delta + prune=safe:");

  const auto wf = full.worst_point();
  const auto wd = delta.worst_point();
  const auto wp = pruned.worst_point();
  std::printf("\nworst point identical across all three: %s "
              "(scenario %zu, slack %.1f ps)\n",
              (wf.point == wd.point && wf.point == wp.point &&
               wf.slack == wd.slack && wf.slack == wp.slack)
                  ? "yes"
                  : "NO — BUG",
              wp.scenario, wp.slack * 1e12);

  const auto ps = pruned.prune_stats();
  std::printf("\nPruneStats: %zu points -> %zu evaluated, %zu pruned, "
              "%zu reused\n",
              ps.points, ps.evaluated, ps.pruned, ps.reused);
  std::printf("dirty cone: %.1f%% of vertices, %.1f%% of partitions "
              "(mean over scenarios)\n",
              ps.dirty_vertex_fraction * 100.0,
              ps.dirty_partition_fraction * 100.0);
  std::printf("bound tightness: mean gap %.1f ps, min gap %.1f ps\n",
              ps.mean_bound_gap * 1e12, ps.min_bound_gap * 1e12);

  // The netlist-level view of the same locality argument: the nets the
  // first victim's bump can reach at all (liberty supplies the pin
  // directions the library-agnostic netlist cannot know).
  const auto& victim_net = spec.scenarios[0].entries[0].net;
  const std::vector<int> seeds = {netlist.net_ordinal(victim_net)};
  const auto cone_nets = netlist.transitive_fanout_nets(
      seeds, [&](const nl::Instance& inst, const std::string& pin) {
        return lib.find_cell(inst.cell)->find_pin(pin)->direction ==
               waveletic::liberty::PinDirection::kOutput;
      });
  std::printf("net-level fanout cone of '%s': %zu of %zu nets\n",
              victim_net.c_str(), cone_nets.size(), netlist.nets().size());

  std::printf("\n%-44s %12s %12s\n", "scenario", "bound [ps]", "exact [ps]");
  for (size_t p = 0; p < pruned.size() && p < 16; ++p) {
    const char* name =
        pruned.scenario_name(p % pruned.num_scenarios()).c_str();
    const double bound = pruned.worst_slack_bound(p) * 1e12;
    if (pruned.pruned(p)) {
      std::printf("%-44s %12.1f     (pruned)\n", name, bound);
    } else {
      std::printf("%-44s %12.1f %12.1f\n", name, bound,
                  pruned.worst_slack(p) * 1e12);
    }
  }
  if (pruned.size() > 16) {
    std::printf("... %zu more points\n", pruned.size() - 16);
  }
  return 0;
}
