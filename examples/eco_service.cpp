// ECO loop against the incremental STA service: build a random DAG,
// constrain it through an EditBatch, then publish a stream of edits —
// parasitic bumps, a cell retype, a sink reroute, a noise annotation —
// while worst-slack queries read concurrently-pinned snapshots.
// Demonstrates the copy-on-write lifetime rules: a snapshot pinned
// before an edit keeps answering with its own (old) numbers.
//
//   $ ./eco_service

#include <cstdio>
#include <string>

#include "charlib/characterize.hpp"
#include "netlist/generators.hpp"
#include "sta/edits.hpp"
#include "sta/service.hpp"

namespace cl = waveletic::charlib;
namespace nl = waveletic::netlist;
namespace st = waveletic::sta;

int main() {
  const auto library = cl::build_vcl013_library_fast();
  const auto netlist = nl::make_random_dag(7, 8, 6, 10);
  std::printf("netlist: %zu instances, %zu nets\n",
              netlist.instances().size(), netlist.nets().size());

  st::ServiceConfig cfg;
  cfg.threads = 2;
  st::StaService service(netlist, library, cfg);

  // Constraints are just another EditBatch — the service starts from an
  // unconstrained netlist.
  st::EditBatch constraints;
  int i = 0;
  for (const auto& port : netlist.ports()) {
    if (port.direction == nl::PortDirection::kInput) {
      constraints.set_input_arrival(port.name, 0.01e-9 * i,
                                    (80 + 10 * (i % 7)) * 1e-12);
      ++i;
    } else {
      constraints.set_output_load(port.name, 5e-15);
      constraints.set_required(port.name, 2.5e-9);
    }
  }
  service.apply(constraints);
  std::printf("constrained: worst slack %.4f ns (version %llu)\n",
              service.worst_slack() * 1e9,
              static_cast<unsigned long long>(
                  service.snapshot()->version()));

  // Pin the pre-ECO snapshot: it must keep its numbers no matter what
  // the writer publishes after this line.
  const auto pinned = service.snapshot();
  const double pinned_slack = pinned->worst_slack(0);

  // The ECO stream.  Every publish returns a report; watch the dirty
  // cone stay small and the structural flag flip only for the netlist
  // edits.
  const auto& gates = netlist.instances();
  auto print_report = [](const char* what, const st::PublishReport& r) {
    std::printf("%-34s v%-3llu %s dirty %4zu vertices (%5.1f%%), "
                "%.2f ms\n",
                what, static_cast<unsigned long long>(r.version),
                r.structural ? "rebuild" : "fork   ", r.dirty_vertices,
                r.dirty_cone_fraction * 100.0, r.publish_latency * 1e3);
  };

  st::EditBatch parasitics;
  parasitics.set_net_parasitics(gates[gates.size() / 2].pins.at("Y"),
                                3e-15, 8e-12);
  print_report("bump mid-DAG net parasitics", service.apply(parasitics));

  std::string invx1;
  for (const auto& inst : gates) {
    if (inst.cell == "INVX1") invx1 = inst.name;
  }
  st::EditBatch retype;
  retype.retype_cell(invx1, "INVX4");  // pin-compatible upsize
  print_report(("retype " + invx1 + " INVX1->INVX4").c_str(),
               service.apply(retype));

  std::string nand;
  for (const auto& inst : gates) {
    if (inst.cell == "NAND2X1") nand = inst.name;
  }
  st::EditBatch reroute;
  reroute.reroute_sink(nand, "B", "a0");  // re-pin a sink to an input net
  print_report(("reroute " + nand + "/B -> a0").c_str(),
               service.apply(reroute));

  // Edits that fail validation name the offending edit and handle, and
  // publish nothing.
  try {
    st::EditBatch bogus;
    bogus.set_output_load("a0", 1e-15);  // a0 is an input port
    service.apply(bogus);
  } catch (const waveletic::util::Error& e) {
    std::printf("rejected batch: %s\n", e.what());
  }

  std::printf("\nhead slack now %.4f ns; pinned snapshot still answers "
              "%.4f ns (v%llu)\n",
              service.worst_slack() * 1e9, pinned->worst_slack(0) * 1e9,
              static_cast<unsigned long long>(pinned->version()));
  if (pinned->worst_slack(0) != pinned_slack) {
    std::printf("BUG: pinned snapshot mutated\n");
    return 1;
  }

  std::printf("\n%s", st::format_service_stats(service.stats()).c_str());
  return 0;
}
