// Crosstalk alignment sweep on the paper's Configuration I testbench:
// for each aggressor offset, report the golden victim arrival push-out
// and the error of SGDP vs WLS5.  Demonstrates the full golden-
// simulation + fitting pipeline on a workload small enough to eyeball.
//
//   $ ./crosstalk_sweep          (env WAVELETIC_FAST=1 for fewer cases)

#include <cstdlib>
#include <iostream>

#include "core/method.hpp"
#include "noise/receiver_eval.hpp"
#include "noise/scenario.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "wave/metrics.hpp"

namespace co = waveletic::core;
namespace no = waveletic::noise;
namespace wu = waveletic::util;
namespace wv = waveletic::wave;

int main() {
  const bool fast = [] {
    const char* f = std::getenv("WAVELETIC_FAST");
    return f && f[0] == '1';
  }();

  const waveletic::charlib::Pdk pdk;
  auto spec = no::TestbenchSpec::config1();
  spec.victim_t50 = 1.5e-9;
  no::RunnerOptions ropt;
  ropt.dt = fast ? 2e-12 : 1e-12;
  no::NoiseRunner runner(pdk, spec, ropt);
  no::ReceiverEval::Options eopt;
  eopt.dt = ropt.dt;
  no::ReceiverEval eval(pdk, eopt);

  const auto wls5 = co::make_method("WLS5");
  const auto sgdp = co::make_method("SGDP");

  const double clean_arr = *wv::arrival_50(
      runner.noiseless_in(), runner.in_polarity(), pdk.vdd);

  wu::Table table({"offset (ps)", "pushout (ps)", "golden out (ps)",
                   "WLS5 err (ps)", "SGDP err (ps)"});
  table.set_title("Configuration I aggressor-alignment sweep");

  for (double offset : no::NoiseRunner::offsets(fast ? 7 : 21, 1e-9)) {
    const auto cw = runner.run_case(offset);
    co::MethodInput mi;
    mi.noisy_in = &cw.noisy_in;
    mi.noiseless_in = &runner.noiseless_in();
    mi.noiseless_out = &runner.noiseless_out();
    mi.in_polarity = cw.in_polarity;
    mi.out_polarity = cw.out_polarity;
    mi.vdd = pdk.vdd;

    const double pushout =
        *wv::arrival_50(cw.noisy_in, cw.in_polarity, pdk.vdd) - clean_arr;
    const double w_err =
        eval.ramp_arrival(wls5->fit(mi).ramp, cw.in_polarity) -
        cw.golden_output_arrival;
    const double s_err =
        eval.ramp_arrival(sgdp->fit(mi).ramp, cw.in_polarity) -
        cw.golden_output_arrival;
    table.add_row({wu::format_ps(offset, 0), wu::format_ps(pushout),
                   wu::format_ps(cw.golden_output_arrival),
                   wu::format_ps(w_err), wu::format_ps(s_err)});
  }
  table.print(std::cout);
  std::cout << "\npushout peaks when the aggressor transition overlaps the\n"
               "victim's switching window — the crosstalk delay-noise\n"
               "mechanism the paper's techniques model.\n";
  return 0;
}
