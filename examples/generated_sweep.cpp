// Streaming generated sweep demo: the scenario funnel.
//
//   1. characterize the cell library and run clean STA on a random DAG,
//   2. infer netlist coupling candidates (the layout-extraction
//      stand-in) and expand them into a lazy ScenarioSpace — coupling
//      pairs × aggressor alignment grid × strength grid — without ever
//      materializing the cross product,
//   3. stream the space through StaEngine::sweep(GeneratedSweepSpec):
//      window + correlation feasibility filters kill candidates before
//      any waveform exists, the survivors flow through the
//      baseline+delta+prune pipeline in bounded chunks,
//   4. print the per-stage funnel (GenStats), the aggregated
//      PruneStats, and the exact worst point with its grid coordinates.
//
//   $ ./generated_sweep

#include <cstdio>
#include <iostream>
#include <string>

#include "charlib/characterize.hpp"
#include "interconnect/coupled.hpp"
#include "netlist/generators.hpp"
#include "sta/engine.hpp"
#include "sta/scengen.hpp"
#include "sta/sweep.hpp"

namespace cl = waveletic::charlib;
namespace ic = waveletic::interconnect;
namespace nl = waveletic::netlist;
namespace st = waveletic::sta;

int main() {
  std::cout << "characterizing library...\n";
  const auto lib = cl::build_vcl013_library_fast();

  const auto netlist = nl::make_random_dag(2026, 12, 8, 12);
  st::StaEngine sta(netlist, lib);
  int i = 0;
  int o = 0;
  for (const auto& port : netlist.ports()) {
    if (port.direction == nl::PortDirection::kInput) {
      sta.set_input(port.name, 0.008e-9 * i, (75 + 9 * (i % 13)) * 1e-12);
      ++i;
    } else {
      sta.set_output_load(port.name, (4 + (o % 3)) * 1e-15);
      sta.set_required(port.name, 2.5e-9);
      ++o;
    }
  }
  sta.run();

  // Coupling candidates from ordinal adjacency (a parasitics file would
  // supply the same records in a real flow), expanded into a lazy
  // alignment × strength grid per pair.
  const auto drives = st::make_drives_predicate(lib);
  const auto candidates = ic::infer_coupling_candidates(netlist);
  st::ScenarioSpace space = st::make_scenario_space(
      sta, netlist, candidates, drives,
      /*alignments=*/{}, /*strengths=*/{});
  for (int a = -40; a <= 40; ++a) space.alignments.push_back(a * 50e-12);
  for (int s = 1; s <= 8; ++s) space.strengths.push_back(0.05 * s);
  std::printf("scenario space: %zu pairs x %zu alignments x %zu strengths "
              "= %llu candidates (lazy)\n",
              space.pairs.size(), space.alignments.size(),
              space.strengths.size(),
              static_cast<unsigned long long>(space.size()));

  const st::StructuralCorrelationRule correlation(netlist, drives);
  st::GeneratedSweepSpec spec;
  spec.space = space;
  spec.correlation = &correlation;
  spec.prune = st::PruneMode::kSafe;
  spec.gen_chunk = 1024;
  spec.keep_point_records = false;
  const auto result = sta.sweep(spec);

  // The per-stage funnel — field names are the GenStats members, as in
  // docs/SWEEP_GUIDE.md.
  std::printf("\n%s", result.funnel_report().c_str());
  std::printf("\n%s\n", st::format_prune_stats(result.prune_stats()).c_str());

  const auto& worst = result.worst_point();
  const auto coords = space.decode(worst.candidate);
  const auto& pair = space.pairs[coords.pair];
  std::printf("\nworst point: scenario '%s' (candidate %llu)\n",
              worst.scenario_name.c_str(),
              static_cast<unsigned long long>(worst.candidate));
  std::printf("  victim %s <- aggressor %s, alignment %.0f ps, "
              "strength %.2f V, slack %.1f ps\n",
              pair.victim_name.c_str(), pair.aggressor_name.c_str(),
              space.alignments[coords.alignment] * 1e12,
              space.strengths[coords.strength] * pair.coupling_scale,
              worst.slack * 1e12);
  return 0;
}
