// Batched noise-scenario sweep demo: the production-scale flow on top
// of the paper's equivalent-waveform techniques.
//
//   1. characterize the cell library,
//   2. build a multi-chain netlist and run clean STA,
//   3. build a grid of noise scenarios (aggressor alignment × strength
//      on two victim nets),
//   4. sweep all of them in ONE levelized pass with ScenarioBatch
//      (scenario×vertex thread fan-out + shared Γeff memo),
//   5. print the slack surface and the Γeff cache statistics.
//
//   $ ./scenario_batch_sweep

#include <chrono>
#include <cstdio>
#include <iostream>

#include "charlib/characterize.hpp"
#include "netlist/verilog.hpp"
#include "sta/batch.hpp"
#include "sta/engine.hpp"
#include "util/thread_pool.hpp"

namespace cl = waveletic::charlib;
namespace nl = waveletic::netlist;
namespace st = waveletic::sta;
namespace wu = waveletic::util;
namespace wv = waveletic::wave;

int main() {
  std::cout << "characterizing library...\n";
  const auto lib = cl::build_vcl013_library_fast();

  const auto netlist = nl::parse_verilog(R"(
// two victim chains re-converging on a NAND
module victims (a, b, y);
  input a, b;
  output y;
  wire na1, na2, nb1, nb2;
  INVX1 ua1 (.A(a), .Y(na1));
  INVX4 ua2 (.A(na1), .Y(na2));
  INVX1 ub1 (.A(b), .Y(nb1));
  INVX4 ub2 (.A(nb1), .Y(nb2));
  NAND2X1 uy (.A(na2), .B(nb2), .Y(y));
endmodule
)");

  st::StaEngine sta(netlist, lib);
  // Handle-based constraint API: resolve names once, then run dense.
  sta.set_input(sta.port("a"), 0.0, 120e-12);
  sta.set_input(sta.port("b"), 20e-12, 150e-12);
  sta.set_output_load(sta.port("y"), 8e-15);
  sta.set_required(sta.port("y"), 0.8e-9);
  sta.run();
  std::cout << "\n-- clean run --\n" << sta.report();

  // Victim ramps at the two noisy nets (falling transitions at the
  // receiver inputs of ua2 / ub2), read through PinId handles.
  const auto& va = sta.timing(sta.pin("ua2/A"), st::RiseFall::kFall);
  const auto& vb = sta.timing(sta.pin("ub2/A"), st::RiseFall::kFall);

  // Scenario grid: 8 alignments × 4 strengths × 2 victim nets = 64.
  st::BatchOptions opt;
  opt.threads = 0;  // hardware concurrency
  st::ScenarioBatch batch(sta, opt);
  const double alignments[] = {-60e-12, -40e-12, -20e-12, 0.0,
                               20e-12,  40e-12,  60e-12,  80e-12};
  const double strengths[] = {0.15, 0.30, 0.45, 0.60};
  for (const double align : alignments) {
    for (const double strength : strengths) {
      batch.add(st::make_aggressor_scenario("na1", va.arrival, va.slew,
                                            lib.nom_voltage,
                                            wv::Polarity::kFalling, align,
                                            strength));
      batch.add(st::make_aggressor_scenario("nb1", vb.arrival, vb.slew,
                                            lib.nom_voltage,
                                            wv::Polarity::kFalling, align,
                                            strength));
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  batch.run();
  const auto t1 = std::chrono::steady_clock::now();

  std::printf("\n-- %zu-scenario batched sweep (%zu threads) --\n",
              batch.size(), wu::ThreadPool::hardware_threads());
  std::printf("%-36s %12s\n", "scenario", "slack [ps]");
  double worst = 1e99;
  size_t worst_i = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const double slack = batch.worst_slack(i);
    if (slack < worst) {
      worst = slack;
      worst_i = i;
    }
    if (i < 6 || i + 3 >= batch.size()) {  // head + tail of the table
      std::printf("%-36s %12.1f\n", batch.scenario(i).name.c_str(),
                  slack * 1e12);
    } else if (i == 6) {
      std::printf("  ...\n");
    }
  }
  std::printf("worst scenario: %s (slack %.1f ps)\n",
              batch.scenario(worst_i).name.c_str(), worst * 1e12);

  const auto stats = batch.cache_stats();
  const double ms = std::chrono::duration<double>(t1 - t0).count() * 1e3;
  std::printf("sweep wall time: %.1f ms; Γeff memo: %llu hits, %llu misses\n",
              ms, static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses));
  return 0;
}
