// Interconnect tests: RC-tree Elmore analysis against closed forms and
// simulation, coupled-bus construction and crosstalk behaviour.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "interconnect/coupled.hpp"
#include "interconnect/rctree.hpp"
#include "spice/devices.hpp"
#include "spice/engine.hpp"
#include "util/error.hpp"
#include "wave/metrics.hpp"

namespace ic = waveletic::interconnect;
namespace sp = waveletic::spice;
namespace wv = waveletic::wave;
namespace wu = waveletic::util;

TEST(RcTree, SingleLumpElmoreIsRc) {
  ic::RcTree tree;
  const int root = tree.add_root("drv", 0.0);
  const int leaf = tree.add_node("load", 1e-12, root, 1000.0);
  EXPECT_DOUBLE_EQ(tree.elmore_delay(leaf), 1e-9);
  EXPECT_DOUBLE_EQ(tree.elmore_delay(root), 0.0);
  EXPECT_DOUBLE_EQ(tree.total_cap(), 1e-12);
}

TEST(RcTree, BranchedTreeElmoreHandComputed) {
  //        r1=100        r2=200
  //  drv ---------- n1 ---------- n2 (1pF)
  //                  \ r3=300
  //                   n3 (2pF);  n1 itself 0.5pF
  ic::RcTree tree;
  const int root = tree.add_root("drv", 0.0);
  const int n1 = tree.add_node("n1", 0.5e-12, root, 100.0);
  const int n2 = tree.add_node("n2", 1e-12, n1, 200.0);
  const int n3 = tree.add_node("n3", 2e-12, n1, 300.0);
  // downstream(n1) = 3.5p; elmore(n2) = 100*3.5p + 200*1p = 550ps
  EXPECT_NEAR(tree.elmore_delay(n2), 550e-12, 1e-18);
  // elmore(n3) = 100*3.5p + 300*2p = 950ps
  EXPECT_NEAR(tree.elmore_delay(n3), 950e-12, 1e-18);
  EXPECT_NEAR(tree.downstream_cap(n1), 3.5e-12, 1e-18);
}

TEST(RcTree, LadderElmoreIsExactlyHalfRcForAnySegmentCount) {
  // The π-ladder discretization is Elmore-exact: the far-end Elmore
  // delay equals the distributed-line value RC/2 for every N (the half
  // end-caps cancel the lumping error in the first moment).
  const double r = 1000.0, c = 1e-12;
  for (int n : {1, 2, 5, 20, 50}) {
    const auto tree = ic::RcTree::ladder(n, r, c);
    const double d = tree.elmore_delay(tree.find(std::to_string(n)));
    EXPECT_NEAR(d, 0.5 * r * c, 1e-9 * r * c) << "segments=" << n;
    EXPECT_NEAR(tree.total_cap(), c, 1e-20);
  }
}

TEST(RcTree, ElmoreBoundsSimulated50PercentDelay) {
  // Elmore is an upper bound for the 50% step delay of an RC ladder
  // (monotone response); it should also be within ~2x.
  const double r = 2000.0, c = 0.8e-12;
  const auto tree = ic::RcTree::ladder(8, r, c);
  sp::Circuit ckt;
  const auto names = tree.build_into(ckt, "w.");
  ckt.emplace<sp::VoltageSource>(
      "vin", ckt.find_node(names.front()), sp::kGround,
      std::make_unique<sp::PwlStimulus>(std::vector<sp::PwlStimulus::Point>{
          {0.0, 0.0}, {1e-12, 1.0}}));
  sp::TransientSpec spec;
  spec.t_stop = 10e-9;
  spec.dt = 1e-12;
  const auto res = sp::transient(ckt, spec);
  const auto t50 = res.waveform(names.back()).first_crossing(0.5);
  ASSERT_TRUE(t50.has_value());
  const double elmore =
      tree.elmore_delay(tree.find(std::to_string(8)));
  EXPECT_LT(*t50, elmore);          // Elmore over-estimates 50% delay
  EXPECT_GT(*t50, 0.4 * elmore);    // but not absurdly
}

TEST(RcTree, ValidatesStructure) {
  ic::RcTree tree;
  EXPECT_THROW((void)tree.elmore_delay(0), wu::Error);
  tree.add_root("drv", 0.0);
  EXPECT_THROW((void)tree.add_root("again", 0.0), wu::Error);
  EXPECT_THROW((void)tree.add_node("x", 0.0, 5, 100.0), wu::Error);
  EXPECT_THROW((void)tree.add_node("x", 0.0, 0, -1.0), wu::Error);
  EXPECT_EQ(tree.find("nope"), -1);
}

TEST(CoupledBus, TotalCapacitanceConserved) {
  sp::Circuit ckt;
  ic::CoupledBusSpec spec;
  spec.lines.push_back({"x", 6, 51.0, 28.8e-15});
  spec.lines.push_back({"y", 6, 51.0, 28.8e-15});
  spec.couplings.push_back({0, 1, 100e-15});
  const auto nodes = ic::build_coupled_bus(ckt, spec);

  double ground_cap = 0.0, coupling_cap = 0.0, resistance = 0.0;
  for (const auto& dev : ckt.devices()) {
    if (const auto* c = dynamic_cast<const sp::Capacitor*>(dev.get())) {
      if (dev->name().find("cm_") != std::string::npos) {
        coupling_cap += c->capacitance();
      } else {
        ground_cap += c->capacitance();
      }
    } else if (const auto* r = dynamic_cast<const sp::Resistor*>(dev.get())) {
      resistance += r->resistance();
    }
  }
  EXPECT_NEAR(ground_cap, 2 * 28.8e-15, 1e-20);
  EXPECT_NEAR(coupling_cap, 100e-15, 1e-20);
  EXPECT_NEAR(resistance, 2 * 51.0, 1e-9);
  EXPECT_EQ(nodes.per_line.size(), 2u);
  EXPECT_EQ(nodes.near_end(0), "x_0");
  EXPECT_EQ(nodes.far_end(1), "y_6");
}

TEST(CoupledBus, AggressorInjectsBumpOnDrivenVictim) {
  // Victim held low through a driver resistance; aggressor rises: the
  // victim far end must bounce up and settle back.
  sp::Circuit ckt;
  ic::CoupledBusSpec spec;
  spec.lines.push_back({"x", 6, 51.0, 28.8e-15});
  spec.lines.push_back({"y", 6, 51.0, 28.8e-15});
  spec.couplings.push_back({0, 1, 100e-15});
  const auto nodes = ic::build_coupled_bus(ckt, spec);

  ckt.emplace<sp::VoltageSource>(
      "vx", ckt.find_node(nodes.near_end(0)), sp::kGround,
      std::make_unique<sp::RampStimulus>(1e-9, 150e-12, 0.0, 1.2, true));
  // Weak holding driver on the victim (mimics an inverter holding low).
  const auto vy_drv = ckt.node("y_drv");
  ckt.emplace<sp::VoltageSource>("vy", vy_drv, sp::kGround,
                                 std::make_unique<sp::DcStimulus>(0.0));
  ckt.emplace<sp::Resistor>("ry", vy_drv, ckt.find_node(nodes.near_end(1)),
                            2000.0);

  sp::TransientSpec tspec;
  tspec.t_stop = 5e-9;
  tspec.dt = 1e-12;
  const auto res = sp::transient(ckt, tspec);
  const auto& victim = res.waveform(nodes.far_end(1));
  EXPECT_GT(victim.max_value(), 0.15);          // sizeable bump
  EXPECT_LT(std::fabs(victim.at(5e-9)), 0.03);  // settles back
}

TEST(CoupledBus, CouplingStrengthScalesBump) {
  const auto bump_with = [&](double cm) {
    sp::Circuit ckt;
    ic::CoupledBusSpec spec;
    spec.lines.push_back({"x", 4, 40.0, 20e-15});
    spec.lines.push_back({"y", 4, 40.0, 20e-15});
    spec.couplings.push_back({0, 1, cm});
    const auto nodes = ic::build_coupled_bus(ckt, spec);
    ckt.emplace<sp::VoltageSource>(
        "vx", ckt.find_node(nodes.near_end(0)), sp::kGround,
        std::make_unique<sp::RampStimulus>(0.5e-9, 150e-12, 0.0, 1.2,
                                           true));
    const auto vy = ckt.node("ydrv");
    ckt.emplace<sp::VoltageSource>("vy", vy, sp::kGround,
                                   std::make_unique<sp::DcStimulus>(0.0));
    ckt.emplace<sp::Resistor>("ry", vy, ckt.find_node(nodes.near_end(1)),
                              1000.0);
    sp::TransientSpec tspec;
    tspec.t_stop = 3e-9;
    tspec.dt = 1e-12;
    const auto res = sp::transient(ckt, tspec);
    return res.waveform(nodes.far_end(1)).max_value();
  };
  EXPECT_GT(bump_with(100e-15), 1.8 * bump_with(25e-15));
}

TEST(CoupledBus, ThreeLineConfigurationBuilds) {
  // Config II shape: two aggressors flanking one victim.
  sp::Circuit ckt;
  ic::CoupledBusSpec spec;
  spec.lines.push_back({"x1", 3, 25.5, 14.4e-15});
  spec.lines.push_back({"y", 3, 25.5, 14.4e-15});
  spec.lines.push_back({"x2", 3, 25.5, 14.4e-15});
  spec.couplings.push_back({0, 1, 100e-15});
  spec.couplings.push_back({2, 1, 100e-15});
  const auto nodes = ic::build_coupled_bus(ckt, spec);
  EXPECT_EQ(nodes.per_line.size(), 3u);
  EXPECT_TRUE(ckt.has_node("y_3"));
  EXPECT_GT(ckt.node_count(), 12u);
}

TEST(CoupledBus, RejectsMismatchedSegments) {
  sp::Circuit ckt;
  ic::CoupledBusSpec spec;
  spec.lines.push_back({"x", 4, 40.0, 20e-15});
  spec.lines.push_back({"y", 6, 40.0, 20e-15});
  EXPECT_THROW((void)ic::build_coupled_bus(ckt, spec), wu::Error);
}
