// Batched waveform kernels: bitwise identity of the merge-scan and
// destination-buffer kernels against the scalar Waveform reference,
// Workspace arena reuse semantics, workspace-vs-legacy bitwise equality
// of every Γeff technique, and a threaded sweep with per-worker
// workspaces staying bitwise-equal to the legacy allocating evaluation.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <random>
#include <vector>

#include "core/method.hpp"
#include "core/sgdp.hpp"
#include "netlist/generators.hpp"
#include "sta/engine.hpp"
#include "sta/gamma_cache.hpp"
#include "sta/sweep.hpp"
#include "sta_test_util.hpp"
#include "util/thread_pool.hpp"
#include "wave/kernels.hpp"
#include "wave/metrics.hpp"
#include "wave/ramp.hpp"
#include "wave/waveform.hpp"

namespace co = waveletic::core;
namespace tu = waveletic::statest;
namespace lb = waveletic::liberty;
namespace nl = waveletic::netlist;
namespace st = waveletic::sta;
namespace wu = waveletic::util;
namespace wv = waveletic::wave;

namespace {

/// Bitwise double comparison (== also equates +0/−0 and fails NaN).
::testing::AssertionResult BitEq(double a, double b) {
  if (std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bitwise)";
}

/// Random strictly increasing time grid + arbitrary values.
wv::Waveform random_waveform(std::mt19937_64& rng, size_t n) {
  std::uniform_real_distribution<double> step(1e-13, 5e-12);
  std::uniform_real_distribution<double> volt(-0.3, 1.5);
  std::vector<double> t(n), v(n);
  double acc = -1e-9;
  for (size_t i = 0; i < n; ++i) {
    acc += step(rng);
    t[i] = acc;
    v[i] = volt(rng);
  }
  return wv::Waveform(std::move(t), std::move(v));
}

/// Random non-decreasing query grid spanning past both record ends so
/// the clamp regions are exercised.
std::vector<double> random_sorted_grid(std::mt19937_64& rng,
                                       const wv::Waveform& w, size_t m) {
  const double span = w.t_end() - w.t_begin();
  std::uniform_real_distribution<double> u(w.t_begin() - 0.3 * span,
                                           w.t_end() + 0.3 * span);
  std::vector<double> ts(m);
  for (auto& x : ts) x = u(rng);
  std::sort(ts.begin(), ts.end());
  // Exact grid hits and exact end points are the interesting corners.
  if (m >= 4) {
    ts[0] = w.t_begin();
    ts[m - 1] = w.t_end();
    ts[m / 2] = w.time(w.size() / 2);
    std::sort(ts.begin(), ts.end());
  }
  return ts;
}

}  // namespace

// ---------------------------------------------------------------------------
// sample_into / resample_into / combine_into bitwise identity
// ---------------------------------------------------------------------------

TEST(Kernels, SampleIntoMatchesScalarAtBitwise) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 50; ++round) {
    const size_t n = 1 + static_cast<size_t>(rng() % 300);
    const size_t m = 1 + static_cast<size_t>(rng() % 200);
    const auto w = random_waveform(rng, n);
    const auto ts = random_sorted_grid(rng, w, m);
    std::vector<double> out(m);
    wv::sample_into(w, ts, out);
    for (size_t k = 0; k < m; ++k) {
      EXPECT_TRUE(BitEq(out[k], w.at(ts[k])))
          << "round " << round << " query " << k;
    }
  }
}

TEST(Kernels, SampleIntoSingleSampleWaveform) {
  const wv::Waveform w({1.0}, {0.7});
  const std::vector<double> ts = {0.0, 1.0, 2.0};
  std::vector<double> out(3);
  wv::sample_into(w, ts, out);
  for (double x : out) EXPECT_TRUE(BitEq(x, 0.7));
}

TEST(Kernels, ResampleIntoMatchesResampledBitwise) {
  std::mt19937_64 rng(11);
  for (int round = 0; round < 20; ++round) {
    const auto w = random_waveform(rng, 2 + rng() % 200);
    const size_t m = 2 + rng() % 100;
    const double span = w.t_end() - w.t_begin();
    const double t0 = w.t_begin() - 0.1 * span;
    const double t1 = w.t_end() + 0.1 * span;
    const auto ref = w.resampled(t0, t1, m);
    std::vector<double> t(m), v(m);
    wv::resample_into(w, t0, t1, t, v);
    for (size_t i = 0; i < m; ++i) {
      EXPECT_TRUE(BitEq(t[i], ref.time(i)));
      EXPECT_TRUE(BitEq(v[i], ref.value(i)));
    }
  }
}

TEST(Kernels, MergeGridsMatchesSortUnique) {
  std::mt19937_64 rng(13);
  for (int round = 0; round < 20; ++round) {
    const auto a = random_waveform(rng, 1 + rng() % 100);
    auto b = random_waveform(rng, 1 + rng() % 100);
    // Force duplicates: graft some of a's grid points into b.
    std::vector<double> bt(b.times().begin(), b.times().end());
    std::vector<double> bv(b.values().begin(), b.values().end());
    bt.insert(bt.end(), a.times().begin(), a.times().end());
    std::sort(bt.begin(), bt.end());
    bt.erase(std::unique(bt.begin(), bt.end()), bt.end());
    bv.resize(bt.size(), 0.5);
    b = wv::Waveform(bt, bv);

    std::vector<double> ref(a.size() + b.size());
    {
      std::vector<double> cat;
      cat.insert(cat.end(), a.times().begin(), a.times().end());
      cat.insert(cat.end(), b.times().begin(), b.times().end());
      std::sort(cat.begin(), cat.end());
      cat.erase(std::unique(cat.begin(), cat.end()), cat.end());
      ref = cat;
    }
    std::vector<double> merged(a.size() + b.size());
    merged.resize(wv::merge_grids(a.times(), b.times(), merged));
    ASSERT_EQ(merged.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_TRUE(BitEq(merged[i], ref[i]));
    }
  }
}

TEST(Kernels, CombineIntoMatchesCombineBitwise) {
  std::mt19937_64 rng(17);
  wv::Workspace ws;
  for (int round = 0; round < 20; ++round) {
    const auto a = random_waveform(rng, 1 + rng() % 150);
    const auto b = random_waveform(rng, 1 + rng() % 150);
    const auto ref = wv::combine(a, 0.75, b, -1.25);
    const auto scope = ws.scope();
    const auto got = wv::combine_into(a, 0.75, b, -1.25, ws);
    ASSERT_EQ(got.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_TRUE(BitEq(got.time[i], ref.time(i)));
      EXPECT_TRUE(BitEq(got.value[i], ref.value(i)));
    }
  }
}

TEST(Kernels, DerivativeIntoMatchesDerivativeBitwise) {
  std::mt19937_64 rng(19);
  const auto w = random_waveform(rng, 64);
  const auto ref = w.derivative();
  std::vector<double> out(w.size());
  wv::derivative_into(w, out);
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_TRUE(BitEq(out[i], ref.value(i)));
  }
}

// ---------------------------------------------------------------------------
// smoothed: prefix-sum vs the naive O(n·w) reference
// ---------------------------------------------------------------------------

TEST(Kernels, SmoothedMatchesNaiveReference) {
  std::mt19937_64 rng(23);
  const auto w = random_waveform(rng, 257);
  for (const size_t half : {size_t{0}, size_t{1}, size_t{5}, size_t{300}}) {
    const auto s = w.smoothed(half);
    ASSERT_EQ(s.size(), w.size());
    for (size_t i = 0; i < w.size(); ++i) {
      const size_t lo = (i >= half) ? i - half : 0;
      const size_t hi = std::min(w.size() - 1, i + half);
      double acc = 0.0;
      for (size_t j = lo; j <= hi; ++j) acc += w.value(j);
      const double ref = acc / static_cast<double>(hi - lo + 1);
      // The prefix-sum refactor changes the fold order, so tolerance
      // rather than bitwise; the clamped end windows must agree.
      EXPECT_NEAR(s.value(i), ref, 1e-12) << "i=" << i << " half=" << half;
    }
  }
  // half_width = 0 is an exact copy.
  const auto copy = w.smoothed(0);
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_TRUE(BitEq(copy.value(i), w.value(i)));
  }
}

// ---------------------------------------------------------------------------
// Crossings: dedup fix + scan equivalence
// ---------------------------------------------------------------------------

TEST(Kernels, FinalSampleOnLevelAfterTouchingPenultimateCountsOnce) {
  // ... 0.2, 0.5, 0.5 — the flat tail touches the level once, not twice.
  const wv::Waveform w({0.0, 1.0, 2.0}, {0.2, 0.5, 0.5});
  const auto c = w.crossings(0.5);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_TRUE(BitEq(c[0], 1.0));
  // A record ending on the level after an off-level sample still counts.
  const wv::Waveform w2({0.0, 1.0}, {0.2, 0.5});
  ASSERT_EQ(w2.crossings(0.5).size(), 1u);
  EXPECT_TRUE(BitEq(w2.crossings(0.5)[0], 1.0));
}

TEST(Kernels, CrossingScansMatchCrossingsList) {
  std::mt19937_64 rng(29);
  wv::Workspace ws;
  for (int round = 0; round < 40; ++round) {
    const auto w = random_waveform(rng, 1 + rng() % 120);
    const double level = 0.5;
    const auto list = w.crossings(level);
    const auto first = wv::first_crossing(wv::WaveView(w), level);
    const auto last = wv::last_crossing(wv::WaveView(w), level);
    EXPECT_EQ(wv::crossing_count(w, level), list.size());
    if (list.empty()) {
      EXPECT_FALSE(first.has_value());
      EXPECT_FALSE(last.has_value());
    } else {
      ASSERT_TRUE(first.has_value());
      ASSERT_TRUE(last.has_value());
      EXPECT_TRUE(BitEq(*first, list.front()));
      EXPECT_TRUE(BitEq(*last, list.back()));
    }
    const auto scope = ws.scope();
    const auto collected = wv::crossings_into(w, level, ws);
    ASSERT_EQ(collected.size(), list.size());
    for (size_t i = 0; i < list.size(); ++i) {
      EXPECT_TRUE(BitEq(collected[i], list[i]));
    }
  }
}

// ---------------------------------------------------------------------------
// Workspace arena semantics
// ---------------------------------------------------------------------------

TEST(Workspace, ScopeRewindReusesSlabsWithoutNewAllocations) {
  wv::Workspace ws;
  {
    const auto scope = ws.scope();
    (void)ws.alloc(1000);
    (void)ws.alloc(2000);
  }
  const uint64_t warm = ws.heap_allocations();
  EXPECT_GE(warm, 1u);
  for (int i = 0; i < 100; ++i) {
    const auto scope = ws.scope();
    const auto a = ws.alloc(1000);
    const auto b = ws.alloc(2000);
    EXPECT_EQ(a.size(), 1000u);
    EXPECT_EQ(b.size(), 2000u);
  }
  EXPECT_EQ(ws.heap_allocations(), warm)
      << "warmed workspace must not touch the heap again";
}

TEST(Workspace, LargeRequestGetsOwnSlabAndSurvivesMove) {
  wv::Workspace ws;
  auto big = ws.alloc(100000);
  big[0] = 42.0;
  big[99999] = 7.0;
  wv::Workspace moved = std::move(ws);
  // Slab addresses are stable under moves: the span stays valid.
  EXPECT_EQ(big[0], 42.0);
  EXPECT_EQ(big[99999], 7.0);
  EXPECT_GE(moved.heap_allocations(), 1u);
}

// ---------------------------------------------------------------------------
// Methods: workspace path vs legacy allocating path, bitwise
// ---------------------------------------------------------------------------

namespace {

struct MethodFixture {
  wv::Waveform noisy;
  wv::Waveform clean_in;
  wv::Waveform clean_out;

  MethodFixture() {
    // A rising victim with a mid-transition dip (re-crosses 50%), the
    // canonical noisy shape of the paper.
    const double vdd = 1.2;
    const auto ramp = wv::Ramp::from_arrival_slew(1.0e-9, 150e-12, vdd);
    clean_in = ramp.sampled(256);
    clean_out = wv::Ramp::from_arrival_slew(1.12e-9, 180e-12, vdd)
                    .sampled(256);
    std::vector<double> t(clean_in.times().begin(), clean_in.times().end());
    std::vector<double> v(clean_in.values().begin(),
                          clean_in.values().end());
    for (size_t i = 0; i < t.size(); ++i) {
      v[i] -= 0.45 * std::exp(-std::pow((t[i] - 1.03e-9) / 40e-12, 2.0));
    }
    noisy = wv::Waveform(std::move(t), std::move(v));
  }

  [[nodiscard]] co::MethodInput input(wv::Workspace* ws) const {
    co::MethodInput mi;
    mi.noisy_in = &noisy;
    mi.noiseless_in = &clean_in;
    mi.noiseless_out = &clean_out;
    mi.in_polarity = wv::Polarity::kRising;
    mi.out_polarity = wv::Polarity::kRising;
    mi.vdd = 1.2;
    mi.workspace = ws;
    return mi;
  }
};

}  // namespace

TEST(Kernels, AllMethodsBitwiseIdenticalWithAndWithoutWorkspace) {
  const MethodFixture f;
  wv::Workspace ws;
  for (const auto& method : co::all_methods()) {
    const auto legacy = method->fit(f.input(nullptr));
    const auto pooled = method->fit(f.input(&ws));
    EXPECT_TRUE(BitEq(legacy.ramp.a(), pooled.ramp.a()))
        << method->name() << " slope";
    EXPECT_TRUE(BitEq(legacy.ramp.b(), pooled.ramp.b()))
        << method->name() << " intercept";
    EXPECT_EQ(legacy.degenerate_fallback, pooled.degenerate_fallback)
        << method->name();
  }
}

TEST(Kernels, WarmedWorkspaceMakesFitsHeapFree) {
  const MethodFixture f;
  const co::SgdpMethod method;
  wv::Workspace ws;
  (void)method.fit(f.input(&ws));  // warm the slabs
  const uint64_t warm = ws.heap_allocations();
  for (int i = 0; i < 10; ++i) (void)method.fit(f.input(&ws));
  EXPECT_EQ(ws.heap_allocations(), warm)
      << "repeated fits must reuse the warmed arena";
}

TEST(Kernels, FallingPolarityBitwiseWithAndWithoutWorkspace) {
  const MethodFixture rising;
  // Flip everything to falling so normalized_rising_view takes the
  // flip-into-workspace path.
  const double vdd = 1.2;
  const auto noisy_f = rising.noisy.flipped(vdd);
  const auto in_f = rising.clean_in.flipped(vdd);
  const auto out_f = rising.clean_out.flipped(vdd);
  co::MethodInput mi;
  mi.noisy_in = &noisy_f;
  mi.noiseless_in = &in_f;
  mi.noiseless_out = &out_f;
  mi.in_polarity = wv::Polarity::kFalling;
  mi.out_polarity = wv::Polarity::kFalling;
  mi.vdd = vdd;
  const co::SgdpMethod method;
  const auto legacy = method.fit(mi);
  wv::Workspace ws;
  mi.workspace = &ws;
  const auto pooled = method.fit(mi);
  EXPECT_TRUE(BitEq(legacy.ramp.a(), pooled.ramp.a()));
  EXPECT_TRUE(BitEq(legacy.ramp.b(), pooled.ramp.b()));
}

// ---------------------------------------------------------------------------
// Threaded sweep with per-worker workspaces == legacy allocating path
// ---------------------------------------------------------------------------

TEST(Kernels, ThreadedSweepWithWorkspacesBitwiseEqualsLegacyEvaluate) {
  const lb::Library& lib = tu::vcl013();
  const auto netlist = nl::make_chain_tree(8);
  st::StaEngine sta(netlist, lib);
  tu::constrain_chain_tree(sta, 8);
  sta.run();

  // Scenarios: aggressor bumps on two chains.
  std::vector<st::NoiseScenario> scenarios;
  for (int s = 0; s < 6; ++s) {
    scenarios.push_back(tu::chain_bump_scenario(sta, s % 2, (s - 3) * 10e-12,
                                                0.25 + 0.05 * s));
  }

  // Threaded sweep: per-worker workspaces, shared Γeff memo.
  st::SweepSpec spec;
  spec.scenarios = scenarios;
  spec.threads = 4;
  auto result = sta.sweep(spec);

  // Legacy path: serial evaluate() with NO workspace anywhere.
  sta.prepare();
  for (size_t s = 0; s < scenarios.size(); ++s) {
    const auto table = sta.compile_edge_annotations(&scenarios[s]);
    st::StaEngine::EvalContext ctx;
    ctx.edge_noise = table.data();
    ctx.method = &sta.noise_method();
    ctx.workspace = nullptr;
    st::TimingState state;
    sta.evaluate(state, ctx);
    for (size_t vtx = 0; vtx < state.size(); ++vtx) {
      for (int rf = 0; rf < 2; ++rf) {
        const auto& legacy = state[vtx].timing[rf];
        const auto& pooled = result.state(s)[vtx].timing[rf];
        EXPECT_EQ(legacy.valid, pooled.valid);
        EXPECT_TRUE(BitEq(legacy.arrival, pooled.arrival))
            << "scenario " << s << " vertex " << vtx;
        EXPECT_TRUE(BitEq(legacy.slew, pooled.slew));
        EXPECT_TRUE(BitEq(legacy.required, pooled.required));
      }
    }
  }
}
