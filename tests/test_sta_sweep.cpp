// Unified Sweep surface: corner × scenario cross products evaluated in
// one levelized pass, cross-checked bitwise against independent
// single-engine runs; TimingView accessors; worst_point(); the
// ScenarioBatch compatibility shim; and corner-keyed Γeff memoization.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "netlist/generators.hpp"
#include "sta/batch.hpp"
#include "sta/engine.hpp"
#include "sta/sweep.hpp"
#include "sta_test_util.hpp"
#include "util/error.hpp"
#include "wave/ramp.hpp"

namespace lb = waveletic::liberty;
namespace nl = waveletic::netlist;
namespace st = waveletic::sta;
namespace tu = waveletic::statest;
namespace wu = waveletic::util;
namespace wv = waveletic::wave;

namespace {

// Shared scaffolding lives in sta_test_util.hpp.
const lb::Library& lib() { return tu::vcl013(); }

void constrain(st::StaEngine& sta, int width) {
  tu::constrain_chain_tree(sta, width);
}

st::NoiseScenario bump_scenario(const st::StaEngine& clean, int chain,
                                double alignment, double strength) {
  return tu::chain_bump_scenario(clean, chain, alignment, strength);
}

void apply_scenario(st::StaEngine& sta, const st::NoiseScenario& sc) {
  sta.clear_noisy_nets();
  for (const auto& e : sc.entries) {
    sta.annotate_noisy_net(e.net, e.annotation.waveform,
                           e.annotation.polarity);
  }
}

void expect_states_identical(const st::TimingState& a,
                             const st::TimingState& b) {
  EXPECT_TRUE(tu::states_bitwise_equal(a, b));
}

std::vector<st::Corner> two_corners() {
  st::Corner slow;
  slow.name = "slow";
  slow.cell_delay_scale = 1.12;
  slow.cell_slew_scale = 1.08;
  slow.wire_delay_scale = 1.25;
  return {st::Corner{}, slow};
}

}  // namespace

TEST(StaSweep, CrossProductMatchesIndependentRunsBitwise) {
  const int width = 6;
  const auto net = nl::make_chain_tree(width);

  st::StaEngine clean(net, lib());
  constrain(clean, width);
  clean.run();

  // 2 corners × 8 scenarios, evaluated in ONE levelized pass.
  st::SweepSpec spec;
  spec.corners = two_corners();
  for (int chain : {0, 3}) {
    for (int a = 0; a < 4; ++a) {
      spec.scenarios.push_back(
          bump_scenario(clean, chain, (a - 2) * 20e-12, 0.3 + 0.1 * a));
    }
  }
  spec.threads = 4;

  st::StaEngine sta(net, lib());
  constrain(sta, width);
  const auto result = sta.sweep(spec);
  ASSERT_EQ(result.num_corners(), 2u);
  ASSERT_EQ(result.num_scenarios(), 8u);
  ASSERT_EQ(result.size(), 16u);

  // Independent nested loops: one single-threaded engine run per
  // (corner, scenario), no cache.  Must match the sweep bitwise.
  st::StaEngine ref(net, lib());
  constrain(ref, width);
  ref.set_threads(1);
  for (size_t c = 0; c < spec.corners.size(); ++c) {
    ref.set_corner(spec.corners[c]);
    for (size_t s = 0; s < spec.scenarios.size(); ++s) {
      apply_scenario(ref, spec.scenarios[s]);
      ref.run();
      const size_t p = result.point(c, s);
      EXPECT_EQ(result.worst_slack(p), ref.worst_slack())
          << "corner " << c << " scenario " << s;
      const auto& ry = ref.timing("y", st::RiseFall::kFall);
      const auto& sy = result.timing(p, "y", st::RiseFall::kFall);
      EXPECT_EQ(sy.arrival, ry.arrival);
      EXPECT_EQ(sy.slew, ry.slew);
      EXPECT_EQ(sy.required, ry.required);
    }
  }
}

TEST(StaSweep, WorstPointIsTheArgminOverAllPoints) {
  const int width = 4;
  const auto net = nl::make_chain_tree(width);
  st::StaEngine clean(net, lib());
  constrain(clean, width);
  clean.run();

  st::SweepSpec spec;
  spec.corners = two_corners();
  for (int a = 0; a < 4; ++a) {
    spec.scenarios.push_back(bump_scenario(clean, 0, a * 15e-12, 0.5));
  }
  st::StaEngine sta(net, lib());
  constrain(sta, width);
  const auto result = sta.sweep(spec);

  const auto worst = result.worst_point();
  EXPECT_EQ(worst.point,
            worst.corner * result.num_scenarios() + worst.scenario);
  for (size_t p = 0; p < result.size(); ++p) {
    EXPECT_LE(worst.slack, result.worst_slack(p));
  }
  EXPECT_EQ(worst.slack, result.worst_slack(worst.point));
  // The derated corner is strictly slower, so the worst point must come
  // from it.
  EXPECT_EQ(worst.corner, 1u);
}

TEST(StaSweep, DeratedCornerIsStrictlySlower) {
  const int width = 3;
  const auto net = nl::make_chain_tree(width);
  st::StaEngine sta(net, lib());
  constrain(sta, width);

  st::SweepSpec spec;
  spec.corners = two_corners();
  const auto result = sta.sweep(spec);  // no scenarios: one clean point each

  const auto nominal = result.view(0, 0);
  const auto slow = result.view(1, 0);
  EXPECT_EQ(nominal.corner().name, "nominal");
  EXPECT_EQ(slow.corner().name, "slow");
  const auto& ty_nom = nominal.timing("y", st::RiseFall::kFall);
  const auto& ty_slow = slow.timing("y", st::RiseFall::kFall);
  ASSERT_TRUE(ty_nom.valid && ty_slow.valid);
  EXPECT_GT(ty_slow.arrival, ty_nom.arrival);
  EXPECT_GT(ty_slow.slew, ty_nom.slew);
  EXPECT_LT(slow.worst_slack(), nominal.worst_slack());
}

TEST(StaSweep, TimingViewHandleAndStringAgreeAndPathsBacktrack) {
  const int width = 4;
  const auto net = nl::make_chain_tree(width);
  st::StaEngine clean(net, lib());
  constrain(clean, width);
  clean.run();

  st::SweepSpec spec;
  spec.scenarios.push_back(bump_scenario(clean, 0, 10e-12, 0.5));
  st::StaEngine sta(net, lib());
  constrain(sta, width);
  const auto result = sta.sweep(spec);

  const auto view = result.view(0);
  EXPECT_EQ(view.scenario_name(), spec.scenarios[0].name);
  const st::PinId y = sta.pin("y");
  // Same PinTiming object through both overloads.
  EXPECT_EQ(&view.timing(y, st::RiseFall::kFall),
            &view.timing("y", st::RiseFall::kFall));

  const auto path = view.critical_path();
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.back().pin, "y");
  for (size_t i = 1; i < path.size(); ++i) {
    EXPECT_GE(path[i].arrival, path[i - 1].arrival - 1e-15);
  }
  // Matches the per-point accessor on the result itself.
  EXPECT_EQ(result.critical_path(0).size(), path.size());
}

TEST(StaSweep, EmptySpecIsOneCleanPointMatchingRun) {
  const int width = 3;
  const auto net = nl::make_chain_tree(width);
  st::StaEngine sta(net, lib());
  constrain(sta, width);
  const auto result = sta.sweep(st::SweepSpec{});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.scenario_name(0), "clean");

  sta.run();
  EXPECT_EQ(result.worst_slack(0), sta.worst_slack());
  EXPECT_EQ(result.timing(0, "y", st::RiseFall::kFall).arrival,
            sta.timing("y", st::RiseFall::kFall).arrival);
}

TEST(StaSweep, EngineCornerAppliesWhenSpecHasNoCornerAxis) {
  const int width = 3;
  const auto net = nl::make_chain_tree(width);
  st::StaEngine sta(net, lib());
  constrain(sta, width);
  sta.set_corner(two_corners()[1]);

  const auto result = sta.sweep(st::SweepSpec{});
  ASSERT_EQ(result.num_corners(), 1u);
  EXPECT_EQ(result.corner(0).name, "slow");

  sta.run();  // run() honours the engine corner too
  EXPECT_EQ(result.worst_slack(0), sta.worst_slack());

  sta.clear_corner();
  sta.run();
  EXPECT_LT(result.worst_slack(0), sta.worst_slack());  // derate costs slack
}

TEST(StaSweep, SharedCacheAcrossCornersStaysBitwiseCorrect) {
  const int width = 4;
  const auto net = nl::make_chain_tree(width);
  st::StaEngine clean(net, lib());
  constrain(clean, width);
  clean.run();

  st::SweepSpec spec;
  spec.corners = two_corners();
  for (int a = 0; a < 4; ++a) {
    spec.scenarios.push_back(bump_scenario(clean, 1, a * 15e-12, 0.5));
  }
  spec.threads = 2;

  st::StaEngine sta_on(net, lib());
  constrain(sta_on, width);
  spec.share_gamma_cache = true;
  const auto shared = sta_on.sweep(spec);
  EXPECT_GT(shared.cache_stats().hits + shared.cache_stats().misses, 0u);

  st::StaEngine sta_off(net, lib());
  constrain(sta_off, width);
  spec.share_gamma_cache = false;
  spec.threads = 1;
  const auto unshared = sta_off.sweep(spec);
  EXPECT_EQ(unshared.cache_stats().hits + unshared.cache_stats().misses, 0u);

  // Corner keys keep cache entries distinct per derate: a hit can never
  // leak a fit from another corner, so shared == unshared bitwise.
  for (size_t p = 0; p < shared.size(); ++p) {
    expect_states_identical(shared.state(p), unshared.state(p));
  }
}

TEST(StaSweep, ScenarioBatchIsAShimOverSweep) {
  const int width = 4;
  const auto net = nl::make_chain_tree(width);
  st::StaEngine clean(net, lib());
  constrain(clean, width);
  clean.run();

  std::vector<st::NoiseScenario> scenarios;
  for (int a = 0; a < 3; ++a) {
    scenarios.push_back(bump_scenario(clean, 0, (a - 1) * 20e-12, 0.4));
  }

  st::StaEngine sta_batch(net, lib());
  constrain(sta_batch, width);
  st::ScenarioBatch batch(sta_batch);
  for (const auto& sc : scenarios) batch.add(sc);
  batch.run();

  st::StaEngine sta_sweep(net, lib());
  constrain(sta_sweep, width);
  st::SweepSpec spec;
  spec.scenarios = scenarios;
  const auto result = sta_sweep.sweep(spec);

  ASSERT_EQ(batch.size(), result.num_scenarios());
  for (size_t i = 0; i < batch.size(); ++i) {
    expect_states_identical(batch.state(i), result.state(i));
  }
  // The shim exposes its underlying SweepResult.
  EXPECT_EQ(batch.result().size(), batch.size());
  EXPECT_EQ(batch.result().num_corners(), 1u);
}

TEST(StaSweep, EndpointOnlyAgreesWithFullStateBitwise) {
  const int width = 5;
  const auto net = nl::make_chain_tree(width);
  st::StaEngine clean(net, lib());
  constrain(clean, width);
  clean.run();

  st::SweepSpec spec;
  spec.corners = two_corners();
  for (int a = 0; a < 5; ++a) {
    spec.scenarios.push_back(bump_scenario(clean, a % 2, (a - 2) * 15e-12,
                                           0.3 + 0.08 * a));
  }
  spec.threads = 2;

  st::StaEngine sta(net, lib());
  constrain(sta, width);
  const auto full = sta.sweep(spec);
  spec.endpoint_only = true;
  spec.endpoint_chunk = 3;  // force multiple chunks over the 10 points
  const auto summary = sta.sweep(spec);

  ASSERT_EQ(summary.size(), full.size());
  EXPECT_TRUE(summary.endpoint_only());
  EXPECT_FALSE(full.endpoint_only());
  ASSERT_EQ(summary.num_endpoints(), 1u);
  EXPECT_EQ(summary.endpoint_name(0), "y");

  for (size_t p = 0; p < full.size(); ++p) {
    // worst slack, critical endpoint and endpoint arrivals agree
    // bitwise with the full-state accessors on the same spec.
    EXPECT_EQ(summary.worst_slack(p), full.worst_slack(p)) << "point " << p;
    const auto ce_s = summary.critical_endpoint(p);
    const auto ce_f = full.critical_endpoint(p);
    EXPECT_EQ(ce_s.endpoint, ce_f.endpoint);
    EXPECT_EQ(ce_s.rf, ce_f.rf);
    EXPECT_EQ(ce_s.slack, ce_f.slack);
    for (int rf = 0; rf < 2; ++rf) {
      EXPECT_EQ(summary.endpoint_arrival(p, 0, static_cast<st::RiseFall>(rf)),
                full.endpoint_arrival(p, 0, static_cast<st::RiseFall>(rf)));
    }
  }
  const auto wp_full = full.worst_point();
  const auto wp_sum = summary.worst_point();
  EXPECT_EQ(wp_sum.point, wp_full.point);
  EXPECT_EQ(wp_sum.corner, wp_full.corner);
  EXPECT_EQ(wp_sum.scenario, wp_full.scenario);
  EXPECT_EQ(wp_sum.slack, wp_full.slack);

  // Memory: the whole point of the mode.
  EXPECT_LT(summary.result_bytes_per_point() * 10,
            full.result_bytes_per_point());
}

TEST(StaSweep, EndpointOnlyFullStateAccessorsThrowClearly) {
  const int width = 3;
  const auto net = nl::make_chain_tree(width);
  st::StaEngine sta(net, lib());
  constrain(sta, width);
  st::SweepSpec spec;
  spec.endpoint_only = true;
  const auto r = sta.sweep(spec);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_TRUE(std::isfinite(r.worst_slack(0)));
  auto expect_throws_endpoint_only = [](auto&& fn) {
    try {
      fn();
      FAIL() << "expected util::Error";
    } catch (const wu::Error& e) {
      EXPECT_NE(std::string(e.what()).find("endpoint-only"),
                std::string::npos)
          << "error should name the mode: " << e.what();
    }
  };
  expect_throws_endpoint_only([&] { (void)r.state(0); });
  expect_throws_endpoint_only([&] { (void)r.view(0); });
  expect_throws_endpoint_only(
      [&] { (void)r.timing(0, "y", st::RiseFall::kFall); });
  expect_throws_endpoint_only([&] { (void)r.critical_path(0); });
}

TEST(StaSweep, EndpointOnlyViaScenarioBatchShim) {
  const int width = 4;
  const auto net = nl::make_chain_tree(width);
  st::StaEngine clean(net, lib());
  constrain(clean, width);
  clean.run();

  std::vector<st::NoiseScenario> scenarios;
  for (int a = 0; a < 4; ++a) {
    scenarios.push_back(bump_scenario(clean, 0, a * 10e-12, 0.4));
  }

  st::StaEngine sta_full(net, lib());
  constrain(sta_full, width);
  st::ScenarioBatch full(sta_full);
  for (const auto& sc : scenarios) full.add(sc);
  full.run();

  st::StaEngine sta_ep(net, lib());
  constrain(sta_ep, width);
  st::BatchOptions opt;
  opt.endpoint_only = true;
  opt.wide_partition_threshold = 8;  // forwarded alongside
  st::ScenarioBatch batch(sta_ep, opt);
  for (const auto& sc : scenarios) batch.add(sc);
  batch.run();

  EXPECT_TRUE(batch.result().endpoint_only());
  for (size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(batch.worst_slack(i), full.worst_slack(i)) << "scenario " << i;
  }
  EXPECT_THROW((void)batch.state(0), wu::Error);
}

TEST(StaSweep, OutOfRangeAccessThrows) {
  const int width = 2;
  const auto net = nl::make_chain_tree(width);
  st::StaEngine sta(net, lib());
  constrain(sta, width);
  const auto result = sta.sweep(st::SweepSpec{});
  EXPECT_THROW((void)result.state(1), wu::Error);
  EXPECT_THROW((void)result.point(1, 0), wu::Error);
  EXPECT_THROW((void)result.point(0, 1), wu::Error);
  EXPECT_THROW((void)result.corner(1), wu::Error);
  EXPECT_THROW((void)st::SweepResult{}.state(0), wu::Error);
}
