// Unit tests for the util substrate: engineering-notation parsing,
// string helpers, CSV/table writers, RNG determinism.

#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace wu = waveletic::util;

TEST(Units, ParsesPlainNumbers) {
  EXPECT_DOUBLE_EQ(wu::parse_eng("8.5"), 8.5);
  EXPECT_DOUBLE_EQ(wu::parse_eng("-3"), -3.0);
  EXPECT_DOUBLE_EQ(wu::parse_eng("1e-9"), 1e-9);
  EXPECT_DOUBLE_EQ(wu::parse_eng("  42 "), 42.0);
}

TEST(Units, ParsesEngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(wu::parse_eng("4.8f"), 4.8e-15);
  EXPECT_DOUBLE_EQ(wu::parse_eng("100fF"), 100e-15);
  EXPECT_DOUBLE_EQ(wu::parse_eng("150ps"), 150e-12);
  EXPECT_DOUBLE_EQ(wu::parse_eng("1n"), 1e-9);
  EXPECT_DOUBLE_EQ(wu::parse_eng("2.2u"), 2.2e-6);
  EXPECT_DOUBLE_EQ(wu::parse_eng("3m"), 3e-3);
  EXPECT_DOUBLE_EQ(wu::parse_eng("1k"), 1e3);
  EXPECT_DOUBLE_EQ(wu::parse_eng("2meg"), 2e6);
  EXPECT_DOUBLE_EQ(wu::parse_eng("1g"), 1e9);
}

TEST(Units, SuffixIsCaseInsensitive) {
  EXPECT_DOUBLE_EQ(wu::parse_eng("100FF"), 100e-15);
  EXPECT_DOUBLE_EQ(wu::parse_eng("2MEG"), 2e6);
  EXPECT_DOUBLE_EQ(wu::parse_eng("5K"), 5e3);
}

TEST(Units, RejectsMalformedInput) {
  EXPECT_THROW(wu::parse_eng(""), wu::Error);
  EXPECT_THROW(wu::parse_eng("abc"), wu::Error);
  EXPECT_THROW(wu::parse_eng("1.2.3"), wu::Error);
  EXPECT_THROW(wu::parse_eng("4.8f!"), wu::Error);
  double out = 0.0;
  EXPECT_FALSE(wu::try_parse_eng("zz1", out));
}

TEST(Units, FormatEngRoundTripsMagnitudes) {
  EXPECT_EQ(wu::format_eng(4.8e-15, "F"), "4.8fF");
  EXPECT_EQ(wu::format_eng(8.5, "Ohm"), "8.5Ohm");
  EXPECT_EQ(wu::format_eng(1.5e-10, "s"), "150ps");
  EXPECT_EQ(wu::format_eng(0.0, "V"), "0V");
}

TEST(Units, FormatPs) {
  EXPECT_EQ(wu::format_ps(1.5e-10), "150.0");
  EXPECT_EQ(wu::format_ps(9.2e-12), "9.2");
  EXPECT_EQ(wu::format_ps(1.234e-12, 2), "1.23");
}

TEST(Strings, TrimAndSplit) {
  EXPECT_EQ(wu::trim("  a b "), "a b");
  EXPECT_EQ(wu::trim(""), "");
  const auto parts = wu::split("a, b,,c", ", ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepEmptyPreservesFields) {
  const auto parts = wu::split_keep_empty("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(wu::to_lower("AbC"), "abc");
  EXPECT_TRUE(wu::iequals("INVX4", "invx4"));
  EXPECT_FALSE(wu::iequals("a", "ab"));
  EXPECT_TRUE(wu::starts_with("cell_rise", "cell"));
  EXPECT_TRUE(wu::ends_with("delay.lib", ".lib"));
}

TEST(Strings, Join) {
  EXPECT_EQ(wu::join({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(wu::join({}, "/"), "");
}

TEST(Error, FmtAssemblesMessage) {
  const auto e = wu::Error::fmt("node ", 3, " missing");
  EXPECT_STREQ(e.what(), "node 3 missing");
  EXPECT_THROW(wu::require(false, "boom"), wu::Error);
  EXPECT_NO_THROW(wu::require(true, "fine"));
}

TEST(Csv, WritesColumnsRowMajor) {
  wu::CsvWriter csv;
  csv.add_column("t", {1.0, 2.0});
  csv.add_text_column("name", {"x", "y"});
  std::ostringstream os;
  csv.write(os);
  EXPECT_EQ(os.str(), "t,name\n1,x\n2,y\n");
}

TEST(Csv, PadsShortColumns) {
  wu::CsvWriter csv;
  csv.add_column("a", {1.0});
  csv.add_column("b", {1.0, 2.0});
  std::ostringstream os;
  csv.write(os);
  EXPECT_EQ(os.str(), "a,b\n1,1\n,2\n");
}

TEST(Table, RendersAlignedGrid) {
  wu::Table t({"Method", "Avg"});
  t.add_row({"SGDP", "9.2"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| Method | Avg |"), std::string::npos);
  EXPECT_NE(s.find("| SGDP   | 9.2 |"), std::string::npos);
}

TEST(Table, RejectsAridityMismatch) {
  wu::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), wu::Error);
}

TEST(Rng, DeterministicAcrossInstances) {
  wu::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformStaysInRange) {
  wu::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  wu::Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 4);
}
