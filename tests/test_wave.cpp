// Unit + property tests for the waveform substrate: interpolation,
// crossings, resampling, polarity normalization, ramps, metrics.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "wave/metrics.hpp"
#include "wave/ramp.hpp"
#include "wave/waveform.hpp"

namespace wv = waveletic::wave;
namespace wu = waveletic::util;

namespace {

constexpr double kVdd = 1.2;

/// Noisy rising edge: main ramp plus a bump that re-crosses mid level.
wv::Waveform make_bumpy_rising() {
  std::vector<double> t, v;
  for (int i = 0; i <= 400; ++i) {
    const double ti = i * 1e-12;
    double vi = kVdd / (1.0 + std::exp(-(ti - 200e-12) / 30e-12));
    // Crosstalk-style bump centered at 280 ps, deep enough to pull the
    // signal back below the 0.5*Vdd level after the first crossing.
    vi -= 0.62 * std::exp(-std::pow((ti - 280e-12) / 25e-12, 2));
    t.push_back(ti);
    v.push_back(vi);
  }
  return wv::Waveform(std::move(t), std::move(v));
}

}  // namespace

TEST(Waveform, ConstructorValidates) {
  EXPECT_THROW(wv::Waveform({0.0, 0.0}, {1.0, 2.0}), wu::Error);
  EXPECT_THROW(wv::Waveform({0.0, 1.0}, {1.0}), wu::Error);
  EXPECT_THROW(wv::Waveform({}, {}), wu::Error);
  EXPECT_NO_THROW(wv::Waveform({0.0}, {1.0}));
}

TEST(Waveform, InterpolatesLinearlyAndClamps) {
  wv::Waveform w({0.0, 1.0, 2.0}, {0.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(w.at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w.at(1.5), 2.0);
  EXPECT_DOUBLE_EQ(w.at(-5.0), 0.0);   // clamp left
  EXPECT_DOUBLE_EQ(w.at(99.0), 2.0);   // clamp right
}

TEST(Waveform, DerivativeOfLineIsConstant) {
  std::vector<double> t, v;
  for (int i = 0; i <= 10; ++i) {
    t.push_back(0.1 * i);
    v.push_back(3.0 * 0.1 * i + 1.0);
  }
  const auto d = wv::Waveform(t, v).derivative();
  for (size_t i = 0; i < d.size(); ++i) EXPECT_NEAR(d.value(i), 3.0, 1e-9);
}

TEST(Waveform, CrossingsOfMonotoneRamp) {
  wv::Waveform w({0.0, 1.0}, {0.0, 1.0});
  const auto c = w.crossings(0.25);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_NEAR(c[0], 0.25, 1e-15);
}

TEST(Waveform, CrossingsCountsBumps) {
  const auto w = make_bumpy_rising();
  // The bump pushes the waveform back below mid level: expect 3 mid
  // crossings (up, down, up).
  EXPECT_EQ(w.crossings(0.5 * kVdd).size(), 3u);
  EXPECT_LT(*w.first_crossing(0.5 * kVdd), *w.last_crossing(0.5 * kVdd));
}

TEST(Waveform, CrossingTouchingSampleCountedOnce) {
  wv::Waveform w({0.0, 1.0, 2.0}, {0.0, 0.5, 1.0});
  EXPECT_EQ(w.crossings(0.5).size(), 1u);
}

TEST(Waveform, NoCrossingReturnsNullopt) {
  wv::Waveform w({0.0, 1.0}, {0.0, 0.4});
  EXPECT_FALSE(w.first_crossing(0.9).has_value());
  EXPECT_FALSE(w.last_crossing(0.9).has_value());
}

TEST(Waveform, ResampleReproducesLinearSegments) {
  wv::Waveform w({0.0, 1.0, 3.0}, {0.0, 1.0, -1.0});
  const auto r = w.resampled(0.0, 3.0, 31);
  EXPECT_EQ(r.size(), 31u);
  for (size_t i = 0; i < r.size(); ++i) {
    EXPECT_NEAR(r.value(i), w.at(r.time(i)), 1e-12);
  }
}

TEST(Waveform, WindowKeepsInteriorSamplesAndInterpolatesEnds) {
  wv::Waveform w({0.0, 1.0, 2.0, 3.0}, {0.0, 1.0, 4.0, 9.0});
  const auto win = w.window(0.5, 2.5);
  EXPECT_DOUBLE_EQ(win.t_begin(), 0.5);
  EXPECT_DOUBLE_EQ(win.t_end(), 2.5);
  EXPECT_DOUBLE_EQ(win.at(1.0), 1.0);
  EXPECT_DOUBLE_EQ(win.at(2.0), 4.0);
}

TEST(Waveform, ShiftMovesCrossings) {
  const auto w = make_bumpy_rising();
  const auto s = w.shifted(7e-12);
  EXPECT_NEAR(*s.last_crossing(0.5 * kVdd),
              *w.last_crossing(0.5 * kVdd) + 7e-12, 1e-15);
}

TEST(Waveform, FlipMapsFallingToRising) {
  const auto rising = make_bumpy_rising();
  const auto falling = rising.flipped(kVdd);
  // flipped twice = original
  const auto twice = falling.flipped(kVdd);
  for (size_t i = 0; i < rising.size(); ++i) {
    EXPECT_NEAR(twice.value(i), rising.value(i), 1e-15);
  }
  // normalized_rising on a falling wave equals the flip
  const auto norm =
      falling.normalized_rising(wv::Polarity::kFalling, kVdd);
  for (size_t i = 0; i < rising.size(); ++i) {
    EXPECT_NEAR(norm.value(i), rising.value(i), 1e-15);
  }
}

TEST(Waveform, SmoothingReducesBumpDepth) {
  const auto w = make_bumpy_rising();
  const auto s = w.smoothed(10);
  // Smoothing must not create new extremes.
  EXPECT_GE(s.min_value(), w.min_value() - 1e-12);
  EXPECT_LE(s.max_value(), w.max_value() + 1e-12);
  EXPECT_EQ(w.smoothed(0).size(), w.size());
}

TEST(Waveform, MonotoneDetection) {
  wv::Waveform mono({0.0, 1.0, 2.0}, {0.0, 0.5, 1.0});
  EXPECT_TRUE(mono.is_monotone_rising());
  EXPECT_FALSE(make_bumpy_rising().is_monotone_rising(1e-6));
}

TEST(Waveform, IntegralOfTriangle) {
  wv::Waveform w({0.0, 1.0, 2.0}, {0.0, 1.0, 0.0});
  EXPECT_NEAR(w.integral(), 1.0, 1e-12);
  EXPECT_NEAR(w.integral(0.5), 0.0, 1e-12);
}

TEST(Waveform, LinearRampMeetsSpec) {
  const auto w = wv::Waveform::linear_ramp(1e-9, 200e-12, 0.0, kVdd, 256);
  EXPECT_NEAR(*w.first_crossing(0.5 * kVdd), 1e-9, 2e-12);
  const double t10 = *w.first_crossing(0.1 * kVdd);
  const double t90 = *w.first_crossing(0.9 * kVdd);
  EXPECT_NEAR(t90 - t10, 0.8 * 200e-12, 3e-12);
  EXPECT_TRUE(w.is_monotone_rising(1e-12));
}

TEST(Waveform, CsvRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "waveletic_test_wave.csv").string();
  const auto w = make_bumpy_rising();
  w.write_csv(path, "v");
  const auto r = wv::Waveform::read_csv(path);
  ASSERT_EQ(r.size(), w.size());
  for (size_t i = 0; i < w.size(); i += 37) {
    EXPECT_NEAR(r.value(i), w.value(i), 1e-9);
  }
  std::filesystem::remove(path);
}

TEST(Waveform, CombineUnionGrid) {
  wv::Waveform a({0.0, 2.0}, {0.0, 2.0});
  wv::Waveform b({1.0, 3.0}, {10.0, 10.0});
  const auto c = wv::combine(a, 1.0, b, 0.5);
  EXPECT_DOUBLE_EQ(c.at(1.0), 1.0 + 5.0);
  EXPECT_DOUBLE_EQ(c.at(2.0), 2.0 + 5.0);
}

// ---------------------------------------------------------------------------
// Ramp (Γeff) tests
// ---------------------------------------------------------------------------

TEST(Ramp, FromArrivalSlewRoundTrips) {
  const auto r = wv::Ramp::from_arrival_slew(2e-9, 150e-12, kVdd);
  EXPECT_NEAR(r.t50(), 2e-9, 1e-18);
  EXPECT_NEAR(r.slew(), 150e-12, 1e-18);
}

TEST(Ramp, EvaluationClampsToRails) {
  const auto r = wv::Ramp::from_arrival_slew(1e-9, 100e-12, kVdd);
  EXPECT_DOUBLE_EQ(r.at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(r.at(5e-9), kVdd);
  EXPECT_NEAR(r.at(r.t50()), 0.5 * kVdd, 1e-12);
}

TEST(Ramp, RejectsBadParameters) {
  EXPECT_THROW(wv::Ramp(-1.0, 0.0, kVdd), wu::Error);
  EXPECT_THROW((void)wv::Ramp::from_arrival_slew(0.0, -1e-12, kVdd),
               wu::Error);
}

TEST(Ramp, SampledWaveformMatchesAnalytic) {
  const auto r = wv::Ramp::from_arrival_slew(1e-9, 80e-12, kVdd);
  const auto w = r.sampled(512);
  for (size_t i = 0; i < w.size(); i += 19) {
    EXPECT_NEAR(w.value(i), r.at(w.time(i)), 1e-12);
  }
  EXPECT_NEAR(*w.first_crossing(0.5 * kVdd), r.t50(), 1e-12);
}

TEST(Ramp, ShiftMovesT50) {
  const auto r = wv::Ramp::from_arrival_slew(1e-9, 80e-12, kVdd);
  EXPECT_NEAR(r.shifted(30e-12).t50(), r.t50() + 30e-12, 1e-18);
}

TEST(Ramp, DenormalizedFallingDescends) {
  const auto r = wv::Ramp::from_arrival_slew(1e-9, 80e-12, kVdd);
  const auto w = r.denormalized(wv::Polarity::kFalling);
  EXPECT_GT(w.value(0), 0.9 * kVdd);
  EXPECT_LT(w.value(w.size() - 1), 0.1 * kVdd);
}

// ---------------------------------------------------------------------------
// Metrics tests
// ---------------------------------------------------------------------------

TEST(Metrics, LevelForHandlesPolarity) {
  EXPECT_DOUBLE_EQ(wv::level_for(wv::Polarity::kRising, 0.1, kVdd),
                   0.1 * kVdd);
  EXPECT_DOUBLE_EQ(wv::level_for(wv::Polarity::kFalling, 0.1, kVdd),
                   0.9 * kVdd);
}

TEST(Metrics, ArrivalUsesLatestCrossing) {
  const auto w = make_bumpy_rising();
  const auto arr = wv::arrival_50(w, wv::Polarity::kRising, kVdd);
  const auto first = wv::first_arrival_50(w, wv::Polarity::kRising, kVdd);
  ASSERT_TRUE(arr && first);
  EXPECT_GT(*arr, *first);
  EXPECT_NEAR(*arr, *w.last_crossing(0.5 * kVdd), 1e-18);
}

TEST(Metrics, NoisySlewSpansBump) {
  const auto w = make_bumpy_rising();
  const auto noisy = wv::slew_noisy(w, wv::Polarity::kRising, kVdd);
  const auto clean = wv::slew_clean(w, wv::Polarity::kRising, kVdd);
  ASSERT_TRUE(noisy && clean);
  EXPECT_GE(*noisy, *clean);  // bump delays the last 90% crossing
}

TEST(Metrics, GateDelayBetweenShiftedRamps) {
  const auto in = wv::Waveform::linear_ramp(1e-9, 100e-12, 0.0, kVdd);
  const auto out = wv::Waveform::linear_ramp(1.3e-9, 150e-12, 0.0, kVdd);
  const auto d = wv::gate_delay_50(in, wv::Polarity::kRising, out,
                                   wv::Polarity::kRising, kVdd);
  ASSERT_TRUE(d);
  EXPECT_NEAR(*d, 0.3e-9, 2e-12);
}

TEST(Metrics, GateDelayWithInvertedOutput) {
  const auto in = wv::Waveform::linear_ramp(1e-9, 100e-12, 0.0, kVdd);
  const auto out =
      wv::Waveform::linear_ramp(1.2e-9, 150e-12, 0.0, kVdd).flipped(kVdd);
  const auto d = wv::gate_delay_50(in, wv::Polarity::kRising, out,
                                   wv::Polarity::kFalling, kVdd);
  ASSERT_TRUE(d);
  EXPECT_NEAR(*d, 0.2e-9, 2e-12);
}

TEST(Metrics, CrossingCountSeesBump) {
  EXPECT_EQ(wv::crossing_count_50(make_bumpy_rising(), kVdd), 3u);
  const auto clean = wv::Waveform::linear_ramp(1e-9, 100e-12, 0.0, kVdd);
  EXPECT_EQ(wv::crossing_count_50(clean, kVdd), 1u);
}

TEST(Metrics, RailExcursions) {
  wv::Waveform w({0.0, 1.0, 2.0}, {-0.1, 0.5, 1.3});
  const auto e = wv::rail_excursions(w, kVdd);
  EXPECT_NEAR(e.undershoot, 0.1, 1e-12);
  EXPECT_NEAR(e.overshoot, 0.1, 1e-12);
}

TEST(Metrics, RmsDifferenceZeroForIdentical) {
  const auto w = make_bumpy_rising();
  EXPECT_NEAR(wv::rms_difference(w, w, w.t_begin(), w.t_end()), 0.0, 1e-15);
}

TEST(Metrics, ArrivalEventRegionMatchesCriticalRegionForCleanRamp) {
  const auto w = wv::Waveform::linear_ramp(1e-9, 150e-12, 0.0, kVdd, 512);
  const auto ev =
      wv::arrival_event_region(w, wv::Polarity::kRising, kVdd);
  const auto cr =
      wv::noiseless_critical_region(w, wv::Polarity::kRising, kVdd);
  ASSERT_TRUE(ev && cr);
  EXPECT_NEAR(ev->t_first, cr->t_first, 2e-12);
  // Completion at 0.8*vdd ends slightly before the 0.9 crossing.
  EXPECT_LT(ev->t_last, cr->t_last);
  EXPECT_GT(ev->t_last, *w.first_crossing(0.5 * kVdd));
}

TEST(Metrics, ArrivalEventRegionCutsPostTransitionTail) {
  // Completed rising transition followed by a long shallow dip that
  // never re-crosses 50%: the event window must end at the completion
  // crossing, excluding the dip.
  std::vector<double> t, v;
  for (int i = 0; i <= 600; ++i) {
    const double ti = i * 1e-12;
    double vi = kVdd / (1.0 + std::exp(-(ti - 150e-12) / 20e-12));
    if (ti > 250e-12) {
      vi -= 0.35 * std::exp(-std::pow((ti - 400e-12) / 90e-12, 2.0));
    }
    t.push_back(ti);
    v.push_back(vi);
  }
  const wv::Waveform w(t, v);
  ASSERT_EQ(w.crossings(0.5 * kVdd).size(), 1u);  // dip stays above 50%
  const auto ev =
      wv::arrival_event_region(w, wv::Polarity::kRising, kVdd);
  ASSERT_TRUE(ev.has_value());
  EXPECT_LT(ev->t_last, 300e-12);  // ends at completion, not dip recovery
  const auto cr = wv::noisy_critical_region(w, wv::Polarity::kRising, kVdd);
  ASSERT_TRUE(cr.has_value());
  EXPECT_GT(cr->t_last, 350e-12);  // critical region does span the dip
}

TEST(Metrics, ArrivalEventRegionSpansRecrossingEvents) {
  // A dip deep enough to re-cross 50%: the window keeps both events so
  // a weighted fit can arbitrate between them.
  const auto base = wv::Waveform::linear_ramp(1e-9, 150e-12, 0.0, kVdd, 512);
  std::vector<double> t(base.times().begin(), base.times().end());
  std::vector<double> v(base.values().begin(), base.values().end());
  for (size_t i = 0; i < t.size(); ++i) {
    v[i] -= 0.8 * std::exp(-std::pow((t[i] - 1.18e-9) / 30e-12, 2.0));
  }
  const wv::Waveform w(std::move(t), std::move(v));
  ASSERT_GE(w.crossings(0.5 * kVdd).size(), 3u);
  const auto ev =
      wv::arrival_event_region(w, wv::Polarity::kRising, kVdd);
  ASSERT_TRUE(ev.has_value());
  EXPECT_LT(ev->t_first, 0.95e-9);              // includes the first rise
  EXPECT_GT(ev->t_last, *w.last_crossing(0.5 * kVdd));  // and the recovery
}

TEST(Metrics, ArrivalEventRegionHandlesMissingCrossings) {
  const wv::Waveform flat({0.0, 1e-9}, {0.0, 0.2});
  EXPECT_FALSE(
      wv::arrival_event_region(flat, wv::Polarity::kRising, kVdd).has_value());
}

TEST(Metrics, CriticalRegions) {
  const auto w = make_bumpy_rising();
  const auto noisy =
      wv::noisy_critical_region(w, wv::Polarity::kRising, kVdd);
  const auto clean =
      wv::noiseless_critical_region(w, wv::Polarity::kRising, kVdd);
  ASSERT_TRUE(noisy && clean);
  EXPECT_LE(clean->t_last, noisy->t_last);
  EXPECT_LT(noisy->t_first, noisy->t_last);
}

// ---------------------------------------------------------------------------
// Property sweeps (parameterized)
// ---------------------------------------------------------------------------

class RampPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(RampPropertyTest, SlewInvariantUnderShift) {
  const double slew = GetParam();
  const auto r = wv::Ramp::from_arrival_slew(1e-9, slew, kVdd);
  for (double dt : {-3e-10, -1e-12, 5e-11, 2e-9}) {
    EXPECT_NEAR(r.shifted(dt).slew(), slew, 1e-18);
  }
}

TEST_P(RampPropertyTest, SampledCrossingsMatchAnalyticTimes) {
  const double slew = GetParam();
  const auto r = wv::Ramp::from_arrival_slew(2e-9, slew, kVdd);
  const auto w = r.sampled(1024);
  for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const auto c = w.first_crossing(frac * kVdd);
    ASSERT_TRUE(c.has_value());
    EXPECT_NEAR(*c, r.time_at(frac * kVdd), slew * 1e-2 + 1e-13);
  }
}

INSTANTIATE_TEST_SUITE_P(Slews, RampPropertyTest,
                         ::testing::Values(20e-12, 50e-12, 150e-12, 400e-12,
                                           1e-9));

class FlipPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FlipPropertyTest, ArrivalSymmetricUnderFlip) {
  // For any waveform, the rising arrival of w equals the falling arrival
  // of its flip.
  wu::Rng rng(GetParam());
  std::vector<double> t, v;
  double x = 0.0;
  for (int i = 0; i <= 300; ++i) {
    const double ti = i * 2e-12;
    x = 0.97 * x + 0.03 * kVdd;  // smooth rise toward vdd
    t.push_back(ti);
    v.push_back(x + 0.05 * (rng.uniform() - 0.5));
  }
  const wv::Waveform w(t, v);
  const auto flipped = w.flipped(kVdd);
  const auto a = wv::arrival_50(w, wv::Polarity::kRising, kVdd);
  const auto b = wv::arrival_50(flipped, wv::Polarity::kFalling, kVdd);
  ASSERT_EQ(a.has_value(), b.has_value());
  if (a) {
    EXPECT_NEAR(*a, *b, 1e-15);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlipPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));
