/// \file test_sta_service.cpp
/// Incremental STA service: every EditBatch class must publish
/// snapshots bitwise identical to a from-scratch prepare()+evaluate()
/// on the edited netlist (at 1/2/4 writer threads), concurrent readers
/// racing snapshot swaps must always see a self-consistent pinned
/// snapshot matching its per-version oracle, validation errors must
/// name the offending handle and edit index, and results must not
/// dangle (SweepResult/TimingView throw after engine destruction;
/// service results co-own their snapshot).

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "netlist/generators.hpp"
#include "sta/edits.hpp"
#include "sta/service.hpp"
#include "sta/sweep.hpp"
#include "sta_test_util.hpp"
#include "util/error.hpp"

namespace waveletic {
namespace {

using statest::states_bitwise_equal;
using statest::vcl013;

std::vector<sta::Corner> service_corners() {
  sta::Corner slow;
  slow.name = "slow";
  slow.cell_delay_scale = 1.12;
  slow.cell_slew_scale = 1.08;
  slow.wire_delay_scale = 1.25;
  return {sta::Corner{}, slow};
}

/// The constrain_ports() constraints expressed as an EditBatch — the
/// service's netlists start unconstrained, so this is batch #1 of
/// every history.
sta::EditBatch constraint_batch(const netlist::Netlist& nl) {
  sta::EditBatch batch;
  int i = 0;
  int o = 0;
  for (const auto& port : nl.ports()) {
    if (port.direction == netlist::PortDirection::kInput) {
      batch.set_input_arrival(port.name, 0.008e-9 * i,
                              (75 + 9 * (i % 13)) * 1e-12);
      ++i;
    } else {
      batch.set_output_load(port.name, (4 + (o % 3)) * 1e-15);
      batch.set_required(port.name, 2.5e-9);
      ++o;
    }
  }
  return batch;
}

/// Replays `history` from scratch: structural edits onto a netlist
/// copy, configuration edits onto a fresh engine (setters are
/// last-write-wins, exactly like the service's sequential applies),
/// then a full serial evaluation per corner — the bitwise oracle every
/// published snapshot must match.
std::vector<sta::TimingState> oracle_baselines(
    const netlist::Netlist& base_netlist,
    const std::vector<sta::EditBatch>& history,
    const std::vector<sta::Corner>& corners) {
  netlist::Netlist nl = base_netlist;
  for (const auto& batch : history) {
    for (const auto& edit : batch.edits()) {
      if (const auto* retype = std::get_if<sta::RetypeCell>(&edit)) {
        nl.retype_instance(retype->instance, retype->new_cell);
      } else if (const auto* reroute = std::get_if<sta::RerouteSink>(&edit)) {
        nl.reroute_pin(reroute->instance, reroute->pin, reroute->new_net);
      }
    }
  }
  sta::StaEngine eng(nl, vcl013());
  for (const auto& batch : history) {
    for (const auto& edit : batch.edits()) {
      if (const auto* e = std::get_if<sta::SetOutputLoad>(&edit)) {
        eng.set_output_load(e->port, e->cap);
      } else if (const auto* e = std::get_if<sta::SetNetParasitics>(&edit)) {
        eng.set_net_parasitics(e->net, e->cap, e->delay);
      } else if (const auto* e = std::get_if<sta::SetInputArrival>(&edit)) {
        eng.set_input(e->port, e->arrival, e->slew);
      } else if (const auto* e = std::get_if<sta::SetRequired>(&edit)) {
        eng.set_required(e->port, e->required);
      } else if (const auto* e = std::get_if<sta::AnnotateNoisyNet>(&edit)) {
        eng.annotate_noisy_net(e->net, e->waveform, e->polarity);
      } else if (const auto* e = std::get_if<sta::ClearNoisyNet>(&edit)) {
        eng.clear_noisy_net(e->net);
      }
    }
  }
  eng.prepare();
  const auto table = eng.compile_edge_annotations(nullptr);
  std::vector<sta::TimingState> states(corners.size());
  for (size_t c = 0; c < corners.size(); ++c) {
    sta::StaEngine::EvalContext ctx;
    ctx.edge_noise = table.data();
    ctx.corner = &corners[c];
    ctx.corner_key = corners[c].key();
    ctx.method = &eng.noise_method();
    eng.evaluate(states[c], ctx);
  }
  return states;
}

/// Publishes `history` (after batch #0, the constraints) through a
/// service at the given writer thread count and checks every corner
/// baseline of the final snapshot bitwise against the replay oracle.
void expect_service_matches_oracle(const netlist::Netlist& base_netlist,
                                   const std::vector<sta::EditBatch>& history,
                                   int threads) {
  sta::ServiceConfig cfg;
  cfg.corners = service_corners();
  cfg.threads = threads;
  sta::StaService service(base_netlist, vcl013(), cfg);
  for (const auto& batch : history) {
    const auto report = service.apply(batch);
    EXPECT_GT(report.version, 1u);
  }
  const auto snap = service.snapshot();
  const auto oracle = oracle_baselines(base_netlist, history, cfg.corners);
  ASSERT_EQ(oracle.size(), snap->corners().size());
  for (size_t c = 0; c < oracle.size(); ++c) {
    EXPECT_TRUE(
        states_bitwise_equal(oracle[c], snap->baseline(c), &snap->engine()))
        << "corner " << c << " at " << threads << " writer thread(s)";
  }
}

/// Per-edit-class histories on a seed-deterministic random DAG; every
/// class is checked bitwise at 1, 2 and 4 writer threads.
class ServiceEditClassTest : public ::testing::Test {
 protected:
  void SetUp() override {
    netlist_ = netlist::make_random_dag(11, 6, 5, 7);
    base_ = {constraint_batch(netlist_)};
  }

  /// A noisy annotation on the first gate's input net, derived from a
  /// constrained clean run (the aggressor-scenario builder needs the
  /// victim ramp).
  sta::EditBatch annotate_batch() {
    sta::StaEngine clean(netlist_, vcl013());
    statest::constrain_ports(clean, netlist_);
    clean.run();
    const auto& inst = netlist_.instances().front();
    const auto& t = clean.timing(inst.name + "/A", sta::RiseFall::kFall);
    const auto scenario = sta::make_aggressor_scenario(
        inst.pins.at("A"), t.arrival, t.slew, vcl013().nom_voltage,
        wave::Polarity::kFalling, -6e-12, 0.35);
    sta::EditBatch batch;
    batch.annotate_noisy_net(scenario.entries[0].net,
                             scenario.entries[0].annotation.waveform,
                             scenario.entries[0].annotation.polarity);
    return batch;
  }

  void check_all_threads(std::vector<sta::EditBatch> extra) {
    std::vector<sta::EditBatch> history = base_;
    for (auto& b : extra) history.push_back(std::move(b));
    for (const int threads : {1, 2, 4}) {
      expect_service_matches_oracle(netlist_, history, threads);
    }
  }

  /// First instance of the given cell (every seed-11 DAG has all three
  /// library cells).
  const netlist::Instance& instance_of(const std::string& cell) const {
    for (const auto& inst : netlist_.instances()) {
      if (inst.cell == cell) return inst;
    }
    throw util::Error("test netlist has no " + cell);
  }

  netlist::Netlist netlist_;
  std::vector<sta::EditBatch> base_;
};

TEST_F(ServiceEditClassTest, ConstraintsOnly) { check_all_threads({}); }

TEST_F(ServiceEditClassTest, SetInputArrival) {
  sta::EditBatch b;
  b.set_input_arrival("a2", 0.05e-9, 140e-12);
  check_all_threads({b});
}

TEST_F(ServiceEditClassTest, SetRequired) {
  const auto& nl = netlist_;
  std::string out;
  for (const auto& port : nl.ports()) {
    if (port.direction == netlist::PortDirection::kOutput) {
      out = port.name;
      break;
    }
  }
  sta::EditBatch b;
  b.set_required(out, 1.1e-9);
  check_all_threads({b});
}

TEST_F(ServiceEditClassTest, SetOutputLoad) {
  std::string out;
  for (const auto& port : netlist_.ports()) {
    if (port.direction == netlist::PortDirection::kOutput) {
      out = port.name;
      break;
    }
  }
  sta::EditBatch b;
  b.set_output_load(out, 11e-15);
  check_all_threads({b});
}

TEST_F(ServiceEditClassTest, SetNetParasitics) {
  const auto& inst = netlist_.instances()[3];
  sta::EditBatch b;
  b.set_net_parasitics(inst.pins.at("Y"), 2.5e-15, 7e-12);
  check_all_threads({b});
}

TEST_F(ServiceEditClassTest, AnnotateNoisyNet) {
  check_all_threads({annotate_batch()});
}

TEST_F(ServiceEditClassTest, ClearNoisyNet) {
  const auto annotate = annotate_batch();
  const auto& net = std::get<sta::AnnotateNoisyNet>(annotate.edits()[0]).net;
  sta::EditBatch clear;
  clear.clear_noisy_net(net);
  check_all_threads({annotate, clear});
}

TEST_F(ServiceEditClassTest, RetypeCell) {
  sta::EditBatch b;
  b.retype_cell(instance_of("INVX1").name, "INVX4");
  check_all_threads({b});
}

TEST_F(ServiceEditClassTest, RerouteSinkToExistingNet) {
  // Move a late NAND's B input onto a primary-input net: always
  // upstream, so the DAG stays acyclic.
  const netlist::Instance* nand = nullptr;
  for (const auto& inst : netlist_.instances()) {
    if (inst.cell == "NAND2X1") nand = &inst;  // keep the last one
  }
  ASSERT_NE(nand, nullptr);
  sta::EditBatch b;
  b.reroute_sink(nand->name, "B", "a0");
  check_all_threads({b});
}

TEST_F(ServiceEditClassTest, RerouteSinkToFreshNet) {
  // Rerouting onto a brand-new (undriven) net appends it, exercising
  // the nets-may-only-be-appended ordinal-stability rule; the sink
  // simply goes unconstrained.
  const netlist::Instance* nand = nullptr;
  for (const auto& inst : netlist_.instances()) {
    if (inst.cell == "NAND2X1") nand = &inst;
  }
  ASSERT_NE(nand, nullptr);
  sta::EditBatch b;
  b.reroute_sink(nand->name, "B", "eco_spare_net");
  check_all_threads({b});
}

TEST_F(ServiceEditClassTest, MixedBatch) {
  // One batch spanning structural + every configuration class: the
  // writer takes the rebuild path and must still fold every edit's
  // dirty cone into one plan.
  const auto annotate = annotate_batch();
  const auto& ann = std::get<sta::AnnotateNoisyNet>(annotate.edits()[0]);
  std::string out;
  for (const auto& port : netlist_.ports()) {
    if (port.direction == netlist::PortDirection::kOutput) out = port.name;
  }
  sta::EditBatch b;
  b.retype_cell(instance_of("INVX4").name, "INVX1")
      .set_net_parasitics(netlist_.instances()[5].pins.at("Y"), 1.5e-15,
                          4e-12)
      .set_input_arrival("a1", 0.02e-9, 95e-12)
      .set_required(out, 1.8e-9)
      .annotate_noisy_net(ann.net, ann.waveform, ann.polarity);
  check_all_threads({b});
}

TEST_F(ServiceEditClassTest, SequentialBatchesAccumulate) {
  // A stream of small batches (the ECO loop shape): every publish is
  // a delta on the previous snapshot, and the final state must equal
  // the full replay.
  std::vector<sta::EditBatch> stream;
  for (int k = 0; k < 6; ++k) {
    const auto& inst = netlist_.instances()[static_cast<size_t>(2 + 3 * k)];
    sta::EditBatch b;
    b.set_net_parasitics(inst.pins.at("Y"), (1.0 + k) * 1e-15,
                         (2.0 + k) * 1e-12);
    stream.push_back(b);
  }
  check_all_threads(stream);
}

TEST(ServiceDeltaTest, SmallEditsRetimeSmallCones) {
  const auto nl = netlist::make_random_dag(23, 6, 6, 8);
  sta::ServiceConfig cfg;
  cfg.corners = service_corners();
  sta::StaService service(nl, vcl013(), cfg);
  service.apply(constraint_batch(nl));

  // A parasitic edit deep in the DAG touches a strict subset of the
  // graph; a required-time edit touches no arrival at all.
  const auto& inst = nl.instances()[nl.instances().size() - 4];
  sta::EditBatch para;
  para.set_net_parasitics(inst.pins.at("A"), 2e-15, 3e-12);
  const auto report = service.apply(para);
  EXPECT_GT(report.dirty_vertices, 0u);
  EXPECT_LT(report.dirty_cone_fraction, 1.0);
  EXPECT_FALSE(report.structural);

  std::string out;
  for (const auto& port : nl.ports()) {
    if (port.direction == netlist::PortDirection::kOutput) out = port.name;
  }
  sta::EditBatch req;
  req.set_required(out, 2.0e-9);
  const auto report2 = service.apply(req);
  EXPECT_EQ(report2.dirty_vertices, 0u);  // backward-only edit

  const auto stats = service.stats();
  EXPECT_EQ(stats.snapshots_published, 3u);
  EXPECT_EQ(stats.structural_rebuilds, 0u);
  EXPECT_GT(stats.mean_publish_latency, 0.0);
  EXPECT_LT(stats.mean_dirty_cone_fraction, 1.0);
}

TEST(ServiceConcurrencyTest, ReadersRaceEditBatches) {
  // N reader threads continuously pin snapshots and record
  // (version, worst-slack bits, probe-pin bits) while the writer
  // publishes M deterministic batches; afterwards every observation
  // must match its version's replay oracle bitwise.
  const auto nl = netlist::make_random_dag(5, 6, 5, 7);
  const auto corners = service_corners();
  constexpr int kBatches = 12;
  const std::string probe = nl.instances().back().name + "/Y";

  auto edit_batch = [&](int k) {
    const auto& inst = nl.instances()[static_cast<size_t>(
        (5 + 7 * k) % static_cast<int>(nl.instances().size()))];
    sta::EditBatch b;
    b.set_net_parasitics(inst.pins.at("Y"), (1.0 + k % 4) * 1e-15,
                         (1.0 + k % 3) * 2e-12);
    return b;
  };

  sta::ServiceConfig cfg;
  cfg.corners = corners;
  cfg.threads = 2;
  sta::StaService service(nl, vcl013(), cfg);
  service.apply(constraint_batch(nl));  // version 2

  struct Observation {
    uint64_t version;
    uint64_t slack_bits;
    uint64_t probe_bits;
  };
  constexpr int kReaders = 4;
  std::vector<std::vector<Observation>> observed(kReaders);
  std::atomic<bool> done{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      // do-while: even if the writer drains every batch before this
      // thread is scheduled, each reader still records >= 1 observation.
      do {
        const auto snap = service.snapshot();
        const size_t corner = static_cast<size_t>(r) % corners.size();
        Observation ob;
        ob.version = snap->version();
        ob.slack_bits = std::bit_cast<uint64_t>(snap->worst_slack(corner));
        ob.probe_bits = std::bit_cast<uint64_t>(
            snap->engine()
                .timing_in(snap->baseline(corner), probe,
                           sta::RiseFall::kRise)
                .arrival);
        observed[static_cast<size_t>(r)].push_back(ob);
      } while (!done.load(std::memory_order_acquire));
    });
  }

  for (int k = 0; k < kBatches; ++k) {
    const auto report = service.apply(edit_batch(k));
    EXPECT_EQ(report.version, static_cast<uint64_t>(k) + 3);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // Per-version oracle: replay the history prefix ending at each
  // version (version 2 = constraints, version 2+k = first k batches).
  std::map<uint64_t, std::vector<sta::TimingState>> oracle;
  std::vector<sta::EditBatch> history = {constraint_batch(nl)};
  oracle[2] = oracle_baselines(nl, history, corners);
  for (int k = 0; k < kBatches; ++k) {
    history.push_back(edit_batch(k));
    oracle[static_cast<uint64_t>(k) + 3] =
        oracle_baselines(nl, history, corners);
  }
  sta::StaEngine probe_engine(nl, vcl013());  // vertex axis for probing
  const auto probe_pin = probe_engine.pin(probe);

  size_t checked = 0;
  for (int r = 0; r < kReaders; ++r) {
    const size_t corner = static_cast<size_t>(r) % corners.size();
    for (const auto& ob : observed[static_cast<size_t>(r)]) {
      ASSERT_TRUE(oracle.count(ob.version) == 1)
          << "reader saw unpublished version " << ob.version;
      const auto& state = oracle.at(ob.version)[corner];
      EXPECT_EQ(ob.slack_bits, std::bit_cast<uint64_t>(
                                   probe_engine.worst_slack_in(state)));
      EXPECT_EQ(ob.probe_bits,
                std::bit_cast<uint64_t>(
                    probe_engine
                        .timing_in(state, probe_pin, sta::RiseFall::kRise)
                        .arrival));
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
  EXPECT_GE(service.stats().queries_served, 0u);
}

TEST(ServiceConcurrencyTest, ScenarioQueriesRaceEdits) {
  // Concurrent scenario queries during publishes: every result must be
  // bitwise-consistent with the snapshot it pinned (version recorded in
  // the co-owned snapshot), not with the head at completion time.
  const auto nl = netlist::make_random_dag(5, 6, 5, 7);
  const auto corners = service_corners();
  sta::ServiceConfig cfg;
  cfg.corners = corners;
  sta::StaService service(nl, vcl013(), cfg);
  service.apply(constraint_batch(nl));

  // Fixed aggressor scenario derived from the constrained clean run.
  sta::StaEngine clean(nl, vcl013());
  statest::constrain_ports(clean, nl);
  clean.run();
  const auto& inst = nl.instances()[2];
  const auto& t = clean.timing(inst.name + "/A", sta::RiseFall::kFall);
  const auto scenario = sta::make_aggressor_scenario(
      inst.pins.at("A"), t.arrival, t.slew, vcl013().nom_voltage,
      wave::Polarity::kFalling, 0.0, 0.3);

  constexpr int kBatches = 8;
  auto edit_batch = [&](int k) {
    const auto& gate = nl.instances()[static_cast<size_t>(
        (3 + 5 * k) % static_cast<int>(nl.instances().size()))];
    sta::EditBatch b;
    b.set_net_parasitics(gate.pins.at("Y"), (1.0 + k % 3) * 1e-15, 0.0);
    return b;
  };

  struct Observation {
    uint64_t version;
    uint64_t slack_bits;
  };
  constexpr int kReaders = 3;
  std::vector<std::vector<Observation>> observed(kReaders);
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      // do-while for the same reason as above: guarantee >= 1 query
      // per reader even when the writer outpaces thread start-up.
      do {
        const auto result = service.query(scenario, 0);
        Observation ob;
        ob.version = result.snapshot()->version();
        ob.slack_bits = std::bit_cast<uint64_t>(result.worst_slack());
        observed[static_cast<size_t>(r)].push_back(ob);
      } while (!done.load(std::memory_order_acquire));
    });
  }
  for (int k = 0; k < kBatches; ++k) service.apply(edit_batch(k));
  done.store(true, std::memory_order_release);
  for (auto& t2 : readers) t2.join();

  // Per-version scenario oracle: replay each prefix, then derive the
  // scenario point from the nominal baseline exactly like query().
  std::map<uint64_t, uint64_t> expected;
  std::vector<sta::EditBatch> history = {constraint_batch(nl)};
  for (int k = 0; k <= kBatches; ++k) {
    if (k > 0) history.push_back(edit_batch(k - 1));
    netlist::Netlist replay_nl = nl;
    sta::StaEngine eng(replay_nl, vcl013());
    for (const auto& batch : history) {
      for (const auto& edit : batch.edits()) {
        if (const auto* e = std::get_if<sta::SetOutputLoad>(&edit)) {
          eng.set_output_load(e->port, e->cap);
        } else if (const auto* e =
                       std::get_if<sta::SetNetParasitics>(&edit)) {
          eng.set_net_parasitics(e->net, e->cap, e->delay);
        } else if (const auto* e = std::get_if<sta::SetInputArrival>(&edit)) {
          eng.set_input(e->port, e->arrival, e->slew);
        } else if (const auto* e = std::get_if<sta::SetRequired>(&edit)) {
          eng.set_required(e->port, e->required);
        }
      }
    }
    eng.prepare();
    sta::SweepSpec spec;
    spec.corners = {corners[0]};
    spec.scenarios = {scenario};
    const auto result = eng.sweep(spec);
    expected[static_cast<uint64_t>(k) + 2] =
        std::bit_cast<uint64_t>(result.worst_slack(0));
  }

  size_t checked = 0;
  for (const auto& per_reader : observed) {
    for (const auto& ob : per_reader) {
      ASSERT_TRUE(expected.count(ob.version) == 1)
          << "query pinned unpublished version " << ob.version;
      EXPECT_EQ(ob.slack_bits, expected.at(ob.version))
          << "scenario query diverged from its pinned snapshot's oracle "
             "(version "
          << ob.version << ")";
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(ServiceLifetimeTest, PinnedSnapshotsSurviveEditsAndService) {
  const auto nl = netlist::make_random_dag(9, 5, 4, 6);
  auto service = std::make_unique<sta::StaService>(
      nl, vcl013(), sta::ServiceConfig{service_corners(), 1, true});
  service->apply(constraint_batch(nl));

  const auto pinned = service->snapshot();
  const uint64_t before = std::bit_cast<uint64_t>(pinned->worst_slack(0));

  // Publishes move the head but never touch the pinned snapshot.
  sta::EditBatch b;
  b.set_net_parasitics(nl.instances()[1].pins.at("Y"), 3e-15, 6e-12);
  service->apply(b);
  EXPECT_NE(service->snapshot().get(), pinned.get());
  EXPECT_EQ(std::bit_cast<uint64_t>(pinned->worst_slack(0)), before);

  // Results co-own their snapshot: both outlive the service itself.
  const auto result = [&] {
    sta::NoiseScenario empty;
    empty.name = "clean";
    return service->query(empty, 0);
  }();
  service.reset();
  EXPECT_EQ(std::bit_cast<uint64_t>(pinned->worst_slack(0)), before);
  EXPECT_EQ(std::bit_cast<uint64_t>(result.worst_slack()), before);
}

TEST(ServiceValidationTest, ErrorsNameHandleAndEditIndex) {
  const auto nl = netlist::make_random_dag(9, 5, 4, 6);
  sta::StaService service(nl, vcl013(),
                          sta::ServiceConfig{{sta::Corner{}}, 1, true});
  service.apply(constraint_batch(nl));
  const uint64_t version = service.snapshot()->version();

  auto expect_error = [&](const sta::EditBatch& batch,
                          std::initializer_list<const char*> needles) {
    try {
      service.apply(batch);
      FAIL() << "expected util::Error";
    } catch (const util::Error& e) {
      const std::string msg = e.what();
      for (const char* needle : needles) {
        EXPECT_NE(msg.find(needle), std::string::npos)
            << "message '" << msg << "' should mention '" << needle << "'";
      }
    }
    // Validation failures must not publish anything.
    EXPECT_EQ(service.snapshot()->version(), version);
  };

  sta::EditBatch unknown_port;
  unknown_port.set_net_parasitics(nl.instances()[0].pins.at("Y"), 1e-15, 0.0);
  unknown_port.set_output_load("no_such_port", 1e-15);
  expect_error(unknown_port,
               {"edit #1", "set_output_load", "no_such_port"});

  sta::EditBatch wrong_direction;
  wrong_direction.set_input_arrival("a0", 0.0, 80e-12);
  wrong_direction.set_required("a1", 1e-9);  // a1 is an input port
  expect_error(wrong_direction, {"edit #1", "set_required", "a1"});

  sta::EditBatch unknown_instance;
  unknown_instance.retype_cell("g9999", "INVX4");
  expect_error(unknown_instance, {"edit #0", "retype_cell", "g9999"});

  sta::EditBatch unknown_cell;
  unknown_cell.retype_cell(nl.instances()[0].name, "INVX8");
  expect_error(unknown_cell, {"retype_cell", "INVX8"});

  sta::EditBatch bad_pin_set;
  // NAND2X1 has a B pin an inverter lacks: retyping a NAND to an
  // inverter must name the missing pin.
  std::string nand;
  for (const auto& inst : nl.instances()) {
    if (inst.cell == "NAND2X1") nand = inst.name;
  }
  ASSERT_FALSE(nand.empty());
  bad_pin_set.retype_cell(nand, "INVX1");
  expect_error(bad_pin_set, {"retype_cell", "INVX1", "'B'"});

  sta::EditBatch drive_reroute;
  drive_reroute.reroute_sink(nl.instances()[0].name, "Y", "a0");
  expect_error(drive_reroute, {"reroute_sink", "/Y", "input"});

  sta::EditBatch bad_value;
  bad_value.set_input_arrival("a0", 0.0, -1e-12);
  expect_error(bad_value, {"set_input_arrival", "slew"});

  sta::EditBatch unknown_net;
  unknown_net.annotate_noisy_net("phantom_net", wave::Waveform{},
                                 wave::Polarity::kFalling);
  expect_error(unknown_net, {"annotate_noisy_net", "phantom_net"});
}

TEST(StalenessGuardTest, SweepResultThrowsAfterEngineDestruction) {
  auto fixture = statest::random_engine(7);
  sta::SweepSpec spec;
  spec.scenarios.push_back(statest::random_scenarios(fixture, 1)[0]);
  auto result = fixture.sta->sweep(spec);
  EXPECT_NO_THROW((void)result.worst_slack(0));
  auto view = result.view(0);
  EXPECT_NO_THROW((void)view.worst_slack());

  fixture.sta.reset();  // the result now points into freed engine state

  try {
    (void)result.worst_slack(0);
    FAIL() << "expected util::Error from a stale SweepResult";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("outlive"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)view.worst_slack(), util::Error);
  EXPECT_THROW((void)result.timing(0, "a0", sta::RiseFall::kRise),
               util::Error);
  EXPECT_THROW((void)result.critical_path(0), util::Error);
}

}  // namespace
}  // namespace waveletic
