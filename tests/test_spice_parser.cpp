// SPICE-deck parser tests: cards, stimuli, models, subcircuit
// flattening, error reporting, and an end-to-end parsed-deck transient.

#include <gtest/gtest.h>

#include "spice/devices.hpp"
#include "spice/engine.hpp"
#include "spice/parser.hpp"
#include "util/error.hpp"
#include "wave/metrics.hpp"

namespace sp = waveletic::spice;
namespace wv = waveletic::wave;
namespace wu = waveletic::util;

TEST(Parser, ParsesRcDivider) {
  auto deck = sp::parse_deck(R"(
* simple divider
v1 top 0 dc 1.0
r1 top mid 1k
r2 mid 0 3k
)");
  EXPECT_EQ(deck.circuit.node_count(), 3u);  // gnd, top, mid
  EXPECT_NE(deck.circuit.find_device("r1"), nullptr);
  const auto x = sp::dc_operating_point(deck.circuit);
  EXPECT_NEAR(x[static_cast<size_t>(deck.circuit.find_node("mid") - 1)],
              0.75, 1e-9);
}

TEST(Parser, EngineeringSuffixesOnCards) {
  auto deck = sp::parse_deck("c1 a 0 4.8f\nr1 a 0 8.5\n");
  auto* c = dynamic_cast<sp::Capacitor*>(deck.circuit.find_device("c1"));
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->capacitance(), 4.8e-15);
  auto* r = dynamic_cast<sp::Resistor*>(deck.circuit.find_device("r1"));
  ASSERT_NE(r, nullptr);
  EXPECT_DOUBLE_EQ(r->resistance(), 8.5);
}

TEST(Parser, PwlSourceWithParenthesesAndCommas) {
  auto deck = sp::parse_deck("v1 in 0 pwl(0 0, 1n 1.2, 2n 0)\nr1 in 0 1k\n");
  auto* v = dynamic_cast<sp::VoltageSource*>(deck.circuit.find_device("v1"));
  ASSERT_NE(v, nullptr);
  EXPECT_NEAR(v->value_at(0.5e-9), 0.6, 1e-12);
  EXPECT_NEAR(v->value_at(1.5e-9), 0.6, 1e-12);
  EXPECT_NEAR(v->value_at(5e-9), 0.0, 1e-12);
}

TEST(Parser, PulseSource) {
  auto deck = sp::parse_deck(
      "v1 in 0 pulse(0 1.2 1n 0.1n 0.1n 2n 5n)\nr1 in 0 1k\n");
  auto* v = dynamic_cast<sp::VoltageSource*>(deck.circuit.find_device("v1"));
  ASSERT_NE(v, nullptr);
  EXPECT_DOUBLE_EQ(v->value_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(v->value_at(2e-9), 1.2);
  EXPECT_NEAR(v->value_at(1.05e-9), 0.6, 1e-9);  // mid-rise
  EXPECT_NEAR(v->value_at(6.05e-9), 0.6, 1e-9);  // periodic repeat
}

TEST(Parser, ContinuationLines) {
  auto deck = sp::parse_deck(
      "v1 in 0 pwl(0 0\n+ 1n 1.2\n+ 2n 0)\nr1 in 0 1k\n");
  auto* v = dynamic_cast<sp::VoltageSource*>(deck.circuit.find_device("v1"));
  ASSERT_NE(v, nullptr);
  EXPECT_NEAR(v->value_at(1e-9), 1.2, 1e-12);
}

TEST(Parser, CommentsAndBlankLinesIgnored) {
  auto deck = sp::parse_deck(R"(
* full-line comment
r1 a 0 100 ; trailing comment

r2 a 0 100 $ dollar comment
)");
  EXPECT_NE(deck.circuit.find_device("r1"), nullptr);
  EXPECT_NE(deck.circuit.find_device("r2"), nullptr);
}

TEST(Parser, ModelAndMosfet) {
  auto deck = sp::parse_deck(R"(
.model mynmos nmos (vth=0.35 alpha=1.3 kc=600 kv=0.9 lambda=0.05)
m1 out in 0 0 mynmos w=0.52u
r1 out 0 1k
)");
  auto* m = dynamic_cast<sp::Mosfet*>(deck.circuit.find_device("m1"));
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->width(), 0.52e-6);
  EXPECT_DOUBLE_EQ(m->model().vth, 0.35);
  EXPECT_FALSE(m->model().pmos);
}

TEST(Parser, SubcktFlattening) {
  auto deck = sp::parse_deck(R"(
.subckt divider top bottom
r1 top mid 1k
r2 mid bottom 1k
.ends
v1 a 0 dc 2.0
x1 a 0 divider
x2 a 0 divider
)");
  // Flattened internal nodes get instance prefixes.
  EXPECT_TRUE(deck.circuit.has_node("x1.mid"));
  EXPECT_TRUE(deck.circuit.has_node("x2.mid"));
  const auto x = sp::dc_operating_point(deck.circuit);
  EXPECT_NEAR(x[static_cast<size_t>(deck.circuit.find_node("x1.mid") - 1)],
              1.0, 1e-9);
}

TEST(Parser, NestedSubcktInstancing) {
  auto deck = sp::parse_deck(R"(
.subckt leaf a b
r1 a b 2k
.ends
.subckt pair x y
xl x m leaf
xr m y leaf
.ends
v1 in 0 dc 1.0
xp in 0 pair
)");
  EXPECT_TRUE(deck.circuit.has_node("xp.m"));
  const auto x = sp::dc_operating_point(deck.circuit);
  EXPECT_NEAR(x[static_cast<size_t>(deck.circuit.find_node("xp.m") - 1)],
              0.5, 1e-9);
}

TEST(Parser, TranCardProducesSpec) {
  auto deck = sp::parse_deck("r1 a 0 1\n.tran 1p 5n\n");
  ASSERT_TRUE(deck.tran.has_value());
  EXPECT_DOUBLE_EQ(deck.tran->dt, 1e-12);
  EXPECT_DOUBLE_EQ(deck.tran->t_stop, 5e-9);
  EXPECT_EQ(deck.tran->method, sp::Integration::kTrapezoidal);

  auto deck_be = sp::parse_deck("r1 a 0 1\n.tran 1p 5n method=be\n");
  ASSERT_TRUE(deck_be.tran.has_value());
  EXPECT_EQ(deck_be.tran->method, sp::Integration::kBackwardEuler);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    (void)sp::parse_deck("r1 a 0 1k\nq1 a b c bjt\n");
    FAIL() << "expected parse error";
  } catch (const wu::Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, RejectsMalformedCards) {
  EXPECT_THROW((void)sp::parse_deck("r1 a 0\n"), wu::Error);          // no value
  EXPECT_THROW((void)sp::parse_deck("x1 a b nodef\n"), wu::Error);    // no subckt
  EXPECT_THROW((void)sp::parse_deck("m1 d g s b nomodel w=1u\n"),
               wu::Error);                                            // no model
  EXPECT_THROW((void)sp::parse_deck("v1 a 0 pwl(0)\n"), wu::Error);   // odd pwl
  EXPECT_THROW((void)sp::parse_deck("+ r1 a 0 1\n"), wu::Error);      // stray +
  EXPECT_THROW((void)sp::parse_deck(".subckt s a\nr1 a 0 1\n"),
               wu::Error);                                            // no .ends
}

TEST(Parser, EndToEndInverterDeck) {
  auto deck = sp::parse_deck(R"(
* transistor-level inverter with explicit caps
.model n1 nmos (vth=0.35 alpha=1.3 kc=600 kv=0.9 lambda=0.05)
.model p1 pmos (vth=0.32 alpha=1.3 kc=270 kv=0.9 lambda=0.05)
.subckt inv in out vdd
mp out in vdd vdd p1 w=1.04u
mn out in 0 0 n1 w=0.52u
cg in 0 1.5f
cd out 0 1.0f
.ends
vdd vdd 0 dc 1.2
vin in 0 pwl(0 0 0.9n 0 1.05n 1.2)
x1 in out vdd inv
cl out 0 10f
.tran 1p 3n
)");
  ASSERT_TRUE(deck.tran.has_value());
  const auto res = sp::transient(deck.circuit, *deck.tran);
  const auto& out = res.waveform("out");
  EXPECT_NEAR(out.at(0.1e-9), 1.2, 0.03);
  EXPECT_NEAR(out.at(3e-9), 0.0, 0.03);
  const auto d = wv::gate_delay_50(res.waveform("in"), wv::Polarity::kRising,
                                   out, wv::Polarity::kFalling, 1.2);
  ASSERT_TRUE(d.has_value());
  EXPECT_GT(*d, 0.0);
}
