module golden (a, b, c, y, z);
  input a, b, c;
  output y, z;
  wire n1, n2, n3, n4, n5, n6;
  INVX1   u1 (.A(a),  .Y(n1));
  INVX4   u2 (.A(b),  .Y(n2));
  NAND2X1 u3 (.A(n1), .B(n2), .Y(n3));
  INVX1   u4 (.A(c),  .Y(n4));
  NAND2X1 u5 (.A(n3), .B(n4), .Y(n5));
  INVX4   u6 (.A(n5), .Y(y));
  NAND2X1 u7 (.A(n3), .B(n5), .Y(n6));
  INVX1   u8 (.A(n6), .Y(z));
endmodule
