// Unit tests for the linear algebra substrate: matrix ops, LU with
// partial pivoting, (weighted) least squares, Gauss-Newton.

#include <gtest/gtest.h>

#include <cmath>

#include "la/gauss_newton.hpp"
#include "la/lu.hpp"
#include "la/matrix.hpp"
#include "la/solve.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace la = waveletic::la;
namespace wu = waveletic::util;

TEST(Matrix, InitializerListAndAccess) {
  la::Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  m(1, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((la::Matrix{{1.0}, {1.0, 2.0}}), wu::Error);
}

TEST(Matrix, MatVecProduct) {
  la::Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const auto y = m.mul(std::vector<double>{1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  EXPECT_THROW(m.mul(std::vector<double>{1.0}), wu::Error);
}

TEST(Matrix, MatMatProductMatchesHandComputation) {
  la::Matrix a{{1.0, 2.0}, {0.0, 1.0}};
  la::Matrix b{{3.0, 0.0}, {1.0, 2.0}};
  const auto c = a.mul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 2.0);
}

TEST(Matrix, TransposeIdentityFrobenius) {
  la::Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_NEAR(m.frobenius_norm(), std::sqrt(91.0), 1e-12);
  const auto eye = la::Matrix::identity(3);
  EXPECT_DOUBLE_EQ(eye(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 1), 0.0);
}

TEST(Lu, SolvesDiagonallyDominantSystem) {
  la::Matrix a{{4.0, 1.0, 0.0}, {1.0, 5.0, 2.0}, {0.0, 2.0, 6.0}};
  const std::vector<double> x_true{1.0, -2.0, 3.0};
  const auto b = a.mul(x_true);
  const auto x = la::lu_solve(a, b);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-12);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  la::Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const auto x = la::lu_solve(a, std::vector<double>{2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(Lu, SingularMatrixThrows) {
  la::Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(la::lu_solve(a, std::vector<double>{1.0, 2.0}), wu::Error);
}

TEST(Lu, NonSquareThrows) {
  la::Matrix a(2, 3);
  la::LuFactorization lu;
  EXPECT_THROW(lu.factor(a), wu::Error);
}

TEST(Lu, DeterminantOfKnownMatrix) {
  la::Matrix a{{2.0, 0.0}, {0.0, 3.0}};
  la::LuFactorization lu;
  lu.factor(a);
  EXPECT_NEAR(lu.abs_determinant(), 6.0, 1e-12);
}

TEST(Lu, RandomSystemsRoundTrip) {
  wu::Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 2 + rng.below(15);
    la::Matrix a(n, n);
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
      a(r, r) += 4.0;  // keep well-conditioned
    }
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = rng.uniform(-5.0, 5.0);
    const auto b = a.mul(x_true);
    const auto x = la::lu_solve(a, b);
    for (size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

TEST(LeastSquares, RecoversExactLine) {
  // v = 3t + 2 sampled exactly: LSQ must reproduce it.
  std::vector<double> t{0.0, 1.0, 2.0, 3.0};
  std::vector<double> v;
  for (double x : t) v.push_back(3.0 * x + 2.0);
  const auto fit = la::fit_line(t, v);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-12);
}

TEST(LeastSquares, CenteringSurvivesNanosecondOffsets) {
  // Times around 5e-9 with ps-scale spread: naive normal equations lose
  // precision; the centered implementation must not.
  std::vector<double> t, v;
  for (int i = 0; i < 50; ++i) {
    const double ti = 5e-9 + 1e-12 * i;
    t.push_back(ti);
    v.push_back(4e9 * ti - 19.0);
  }
  const auto fit = la::fit_line(t, v);
  EXPECT_NEAR(fit.slope, 4e9, 1e-2);
  EXPECT_NEAR(fit.intercept, -19.0, 1e-7);
}

TEST(LeastSquares, WeightsSelectSubset) {
  // Two clusters of points on different lines; zero weights must make
  // the second cluster invisible.
  std::vector<double> t{0.0, 1.0, 2.0, 10.0, 11.0};
  std::vector<double> v{0.0, 1.0, 2.0, 100.0, 90.0};
  std::vector<double> w{1.0, 1.0, 1.0, 0.0, 0.0};
  const auto fit = la::fit_line(t, v, w);
  EXPECT_NEAR(fit.slope, 1.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 0.0, 1e-12);
}

TEST(LeastSquares, AllZeroWeightsThrow) {
  std::vector<double> t{0.0, 1.0};
  std::vector<double> v{0.0, 1.0};
  std::vector<double> w{0.0, 0.0};
  EXPECT_THROW(la::fit_line(t, v, w), wu::Error);
}

TEST(LeastSquares, GeneralPathMatchesLineFit) {
  std::vector<double> t{0.0, 0.5, 1.0, 1.5, 2.0};
  std::vector<double> v{0.1, 0.9, 2.2, 2.8, 4.1};
  la::Matrix a(t.size(), 2);
  for (size_t k = 0; k < t.size(); ++k) {
    a(k, 0) = t[k];
    a(k, 1) = 1.0;
  }
  const auto x = la::least_squares(a, v);
  const auto fit = la::fit_line(t, v);
  EXPECT_NEAR(x[0], fit.slope, 1e-10);
  EXPECT_NEAR(x[1], fit.intercept, 1e-10);
}

TEST(LeastSquares, UnderdeterminedThrows) {
  la::Matrix a(1, 2);
  a(0, 0) = 1.0;
  std::vector<double> b{1.0};
  EXPECT_THROW(la::least_squares(a, b), wu::Error);
}

TEST(GaussNewton, SolvesLinearProblemInOneStep) {
  // r_k = a*t_k + b - v_k : quadratic objective, GN converges in 1 step.
  std::vector<double> t{0.0, 1.0, 2.0, 3.0};
  std::vector<double> v{1.0, 3.0, 5.0, 7.0};
  const auto fn = [&](std::span<const double> x, la::Vector& r,
                      la::Matrix& jac) {
    for (size_t k = 0; k < t.size(); ++k) {
      r[k] = x[0] * t[k] + x[1] - v[k];
      jac(k, 0) = t[k];
      jac(k, 1) = 1.0;
    }
  };
  const auto res = la::gauss_newton(fn, {0.0, 0.0}, t.size());
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x[0], 2.0, 1e-8);
  EXPECT_NEAR(res.x[1], 1.0, 1e-8);
  EXPECT_NEAR(res.objective, 0.0, 1e-14);
}

TEST(GaussNewton, FitsExponentialDecay) {
  // r_k = exp(-x0 * t_k) - y_k with x0_true = 1.7.
  std::vector<double> t, y;
  for (int i = 0; i <= 20; ++i) {
    t.push_back(0.1 * i);
    y.push_back(std::exp(-1.7 * 0.1 * i));
  }
  const auto fn = [&](std::span<const double> x, la::Vector& r,
                      la::Matrix& jac) {
    for (size_t k = 0; k < t.size(); ++k) {
      const double e = std::exp(-x[0] * t[k]);
      r[k] = e - y[k];
      jac(k, 0) = -t[k] * e;
    }
  };
  const auto res = la::gauss_newton(fn, {0.5}, t.size(),
                                    {.max_iterations = 30});
  EXPECT_NEAR(res.x[0], 1.7, 1e-6);
}

TEST(GaussNewton, NeverIncreasesObjective) {
  // Rosenbrock-style residuals; verify monotone objective via repeated
  // restarts from random points.
  wu::Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const double x0 = rng.uniform(-2.0, 2.0);
    const double y0 = rng.uniform(-1.0, 3.0);
    const auto fn = [&](std::span<const double> x, la::Vector& r,
                        la::Matrix& jac) {
      r[0] = 10.0 * (x[1] - x[0] * x[0]);
      r[1] = 1.0 - x[0];
      jac(0, 0) = -20.0 * x[0];
      jac(0, 1) = 10.0;
      jac(1, 0) = -1.0;
      jac(1, 1) = 0.0;
    };
    la::Vector start{x0, y0};
    double obj0;
    {
      la::Vector r(2);
      la::Matrix j(2, 2);
      fn(start, r, j);
      obj0 = r[0] * r[0] + r[1] * r[1];
    }
    const auto res = la::gauss_newton(fn, start, 2, {.max_iterations = 50});
    EXPECT_LE(res.objective, obj0 + 1e-12);
  }
}

TEST(GaussNewton, RejectsDegenerateSetup) {
  const auto fn = [](std::span<const double>, la::Vector&, la::Matrix&) {};
  EXPECT_THROW(la::gauss_newton(fn, {}, 3), wu::Error);
  EXPECT_THROW(la::gauss_newton(fn, {1.0, 2.0}, 1), wu::Error);
}
