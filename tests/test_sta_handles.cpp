// Handle-based STA API: PinId/NetId/PortId resolution, stale/foreign
// handle rejection, bitwise equivalence of the string and handle
// overloads, enriched unknown-name errors, and the compiled per-edge
// annotation table.

#include <gtest/gtest.h>

#include <string>

#include "charlib/characterize.hpp"
#include "netlist/verilog.hpp"
#include "sta/engine.hpp"
#include "sta/sweep.hpp"
#include "util/error.hpp"
#include "wave/ramp.hpp"

namespace cl = waveletic::charlib;
namespace lb = waveletic::liberty;
namespace nl = waveletic::netlist;
namespace st = waveletic::sta;
namespace wu = waveletic::util;
namespace wv = waveletic::wave;

namespace {

const lb::Library& lib() {
  static const lb::Library library = cl::build_vcl013_library_fast();
  return library;
}

nl::Netlist inv_chain3() {
  return nl::parse_verilog(R"(
module chain (a, y);
  input a;
  output y;
  wire n1, n2;
  INVX1 u1 (.A(a), .Y(n1));
  INVX1 u2 (.A(n1), .Y(n2));
  INVX4 u3 (.A(n2), .Y(y));
endmodule
)");
}

/// The message an Error-throwing callable produces (fails the test if
/// nothing is thrown).
template <typename Fn>
std::string error_message(Fn&& fn) {
  try {
    fn();
  } catch (const wu::Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected util::Error";
  return {};
}

}  // namespace

TEST(StaHandles, ResolveAndNameRoundTrip) {
  const auto net = inv_chain3();
  st::StaEngine sta(net, lib());

  const st::PinId p = sta.pin("u1/A");
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(sta.name(p), "u1/A");

  const st::NetId n = sta.net("n1");
  EXPECT_TRUE(n.valid());
  EXPECT_EQ(sta.name(n), "n1");

  const st::PortId a = sta.port("a");
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(sta.name(a), "a");

  // Resolving twice yields the same handle.
  EXPECT_EQ(sta.pin("u1/A"), p);
  EXPECT_EQ(sta.net("n1"), n);
  EXPECT_EQ(sta.port("a"), a);
}

TEST(StaHandles, UnknownNamesThrowWithNearestSuggestions) {
  const auto net = inv_chain3();
  st::StaEngine sta(net, lib());
  sta.set_input("a", 0.0, 100e-12);
  sta.run();

  // timing(): offending name plus nearest known vertices.
  const auto pin_msg =
      error_message([&] { (void)sta.timing("u2/AA", st::RiseFall::kRise); });
  EXPECT_NE(pin_msg.find("u2/AA"), std::string::npos) << pin_msg;
  EXPECT_NE(pin_msg.find("nearest"), std::string::npos) << pin_msg;
  EXPECT_NE(pin_msg.find("u2/A"), std::string::npos) << pin_msg;

  const auto net_msg = error_message([&] { (void)sta.net("n11"); });
  EXPECT_NE(net_msg.find("n11"), std::string::npos) << net_msg;
  EXPECT_NE(net_msg.find("n1"), std::string::npos) << net_msg;

  // Unknown port errors list the available ports.
  const auto port_msg = error_message([&] { (void)sta.port("clk"); });
  EXPECT_NE(port_msg.find("clk"), std::string::npos) << port_msg;
  EXPECT_NE(port_msg.find("a"), std::string::npos) << port_msg;
  EXPECT_NE(port_msg.find("y"), std::string::npos) << port_msg;
}

TEST(StaHandles, InvalidAndForeignHandlesRejected) {
  const auto netlist = inv_chain3();
  st::StaEngine sta_a(netlist, lib());
  st::StaEngine sta_b(netlist, lib());
  sta_a.set_input("a", 0.0, 100e-12);
  sta_a.run();

  // Default-constructed handles are invalid everywhere.
  EXPECT_THROW((void)sta_a.timing(st::PinId{}, st::RiseFall::kRise),
               wu::Error);
  EXPECT_THROW(sta_a.set_required(st::PortId{}, 1e-9), wu::Error);
  EXPECT_THROW(sta_a.set_net_parasitics(st::NetId{}, 0.0, 0.0), wu::Error);

  // Handles minted by a different engine are rejected even though the
  // underlying netlist (and so every index) is identical.
  const st::PinId foreign_pin = sta_b.pin("y");
  const st::NetId foreign_net = sta_b.net("n1");
  const st::PortId foreign_port = sta_b.port("a");
  EXPECT_THROW((void)sta_a.timing(foreign_pin, st::RiseFall::kFall),
               wu::Error);
  EXPECT_THROW((void)sta_a.noisy_net(foreign_net), wu::Error);
  EXPECT_THROW(sta_a.set_input(foreign_port, 0.0, 100e-12), wu::Error);
  EXPECT_THROW((void)sta_a.name(foreign_pin), wu::Error);

  // The same handles work on their own engine.
  sta_b.set_input(foreign_port, 0.0, 100e-12);
  sta_b.run();
  EXPECT_TRUE(sta_b.timing(foreign_pin, st::RiseFall::kFall).valid);
}

TEST(StaHandles, StringAndHandleOverloadsBitwiseEquivalent) {
  const auto netlist = inv_chain3();

  // One engine constrained + annotated by name, one by handle.
  st::StaEngine by_name(netlist, lib());
  by_name.set_input("a", 0.0, 100e-12);
  by_name.set_output_load("y", 5e-15);
  by_name.set_required("y", 1e-9);
  by_name.set_net_parasitics("n2", 4e-15, 8e-12);

  st::StaEngine by_handle(netlist, lib());
  by_handle.set_input(by_handle.port("a"), 0.0, 100e-12);
  by_handle.set_output_load(by_handle.port("y"), 5e-15);
  by_handle.set_required(by_handle.port("y"), 1e-9);
  by_handle.set_net_parasitics(by_handle.net("n2"), 4e-15, 8e-12);

  // Noisy annotation: string path vs NetId path.
  by_name.run();
  const auto& v = by_name.timing("u2/A", st::RiseFall::kFall);
  const auto ramp =
      wv::Ramp::from_arrival_slew(v.arrival, v.slew, lib().nom_voltage);
  const auto noisy = ramp.denormalized(wv::Polarity::kFalling, 256);
  by_name.annotate_noisy_net("n1", noisy, wv::Polarity::kFalling);
  by_handle.annotate_noisy_net(by_handle.net("n1"), noisy,
                               wv::Polarity::kFalling);

  by_name.run();
  by_handle.run();

  for (const char* pin : {"a", "u1/A", "u1/Y", "u2/A", "u2/Y", "u3/Y", "y"}) {
    for (int rf = 0; rf < 2; ++rf) {
      const auto r = static_cast<st::RiseFall>(rf);
      const auto& tn = by_name.timing(pin, r);
      const auto& th = by_handle.timing(by_handle.pin(pin), r);
      EXPECT_EQ(tn.valid, th.valid) << pin;
      EXPECT_EQ(tn.arrival, th.arrival) << pin;  // bitwise: no tolerance
      EXPECT_EQ(tn.slew, th.slew) << pin;
      EXPECT_EQ(tn.required, th.required) << pin;
    }
  }
  EXPECT_EQ(by_name.worst_slack(), by_handle.worst_slack());
}

TEST(StaHandles, NoisyNetTableIsDenseAndClearable) {
  const auto netlist = inv_chain3();
  st::StaEngine sta(netlist, lib());
  const st::NetId n1 = sta.net("n1");
  EXPECT_EQ(sta.noisy_net(n1), nullptr);
  EXPECT_EQ(sta.noisy_net_count(), 0u);

  const auto ramp = wv::Ramp::from_arrival_slew(0.2e-9, 80e-12, 1.2);
  sta.annotate_noisy_net(n1, ramp.denormalized(wv::Polarity::kFalling, 64),
                         wv::Polarity::kFalling);
  ASSERT_NE(sta.noisy_net(n1), nullptr);
  EXPECT_EQ(sta.noisy_net(n1)->polarity, wv::Polarity::kFalling);
  EXPECT_EQ(sta.noisy_net("n1"), sta.noisy_net(n1));
  EXPECT_EQ(sta.noisy_net_count(), 1u);

  // Re-annotating the same net replaces in place (still one slot).
  sta.annotate_noisy_net("n1", ramp.denormalized(wv::Polarity::kRising, 64),
                         wv::Polarity::kRising);
  EXPECT_EQ(sta.noisy_net_count(), 1u);
  EXPECT_EQ(sta.noisy_net(n1)->polarity, wv::Polarity::kRising);

  sta.clear_noisy_nets();
  EXPECT_EQ(sta.noisy_net(n1), nullptr);
  EXPECT_EQ(sta.noisy_net_count(), 0u);
}

TEST(StaHandles, CompiledEdgeTableResolvesOverlayWithoutMaps) {
  const auto netlist = inv_chain3();
  st::StaEngine sta(netlist, lib());
  sta.set_input("a", 0.0, 100e-12);
  sta.prepare();

  const auto ramp = wv::Ramp::from_arrival_slew(0.2e-9, 80e-12, 1.2);
  sta.annotate_noisy_net("n1",
                         ramp.denormalized(wv::Polarity::kFalling, 64),
                         wv::Polarity::kFalling);

  st::NoiseScenario sc;
  sc.name = "overlay";
  sc.annotate("n1", ramp.denormalized(wv::Polarity::kFalling, 128),
              wv::Polarity::kFalling);
  sc.annotate("n2", ramp.denormalized(wv::Polarity::kRising, 64),
              wv::Polarity::kRising);

  // Engine-only table: exactly the one edge of n1 annotated, with the
  // engine's annotation.
  const auto base = sta.compile_edge_annotations();
  ASSERT_EQ(base.size(), sta.net_edge_count());
  size_t base_hits = 0;
  for (const auto* ann : base) {
    if (ann == nullptr) continue;
    ++base_hits;
    EXPECT_EQ(ann, sta.noisy_net(sta.net("n1")));
  }
  EXPECT_EQ(base_hits, 1u);  // n1 has a single sink (u2/A)

  // Overlaid table: scenario wins on n1, adds n2; pointers alias the
  // scenario's entries directly.
  const auto overlaid = sta.compile_edge_annotations(&sc);
  size_t n1_hits = 0;
  size_t n2_hits = 0;
  for (const auto* ann : overlaid) {
    if (ann == nullptr) continue;
    if (ann == sc.find("n1")) ++n1_hits;
    if (ann == sc.find("n2")) ++n2_hits;
  }
  EXPECT_EQ(n1_hits, 1u);
  EXPECT_EQ(n2_hits, 1u);

  // A scenario referencing a net the netlist does not have is rejected
  // at compile time, naming the scenario and the net.
  st::NoiseScenario bad;
  bad.name = "bad";
  bad.annotate("ghost", ramp.denormalized(wv::Polarity::kFalling, 64),
               wv::Polarity::kFalling);
  const auto msg =
      error_message([&] { (void)sta.compile_edge_annotations(&bad); });
  EXPECT_NE(msg.find("bad"), std::string::npos) << msg;
  EXPECT_NE(msg.find("ghost"), std::string::npos) << msg;
}
