// Golden end-to-end regression oracle: a committed reference library
// (tests/golden/golden.lib), netlist (golden.v) and scenario set, with
// expected slacks / arrivals / waveform crossings compared at
// TOLERANCE ZERO (%.17g round-trips doubles exactly).  Future refactors
// (SIMD, pruning, scheduling changes) must reproduce these bits.
//
// Why this is portable: the library is *parsed*, never re-characterized
// (characterization runs std::pow, which is not correctly rounded and
// varies across libm versions); the scenario bumps below use a rational
// polynomial instead of a Gaussian; and the whole propagation path —
// NLDM interpolation, ramp algebra, the Γeff fits (LSQ/Gauss–Newton) —
// is +,−,×,÷,sqrt only, all IEEE correctly-rounded, with FMA
// contraction disabled build-wide (-ffp-contract=off in CMakeLists).
//
// Refresh after an INTENDED numeric change:
//   WAVELETIC_UPDATE_GOLDEN=1 ./build/test_golden
// regenerates golden.lib (re-characterized), golden.v and expected.txt;
// commit the diff alongside the change that caused it.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "charlib/characterize.hpp"
#include "interconnect/coupled.hpp"
#include "liberty/parser.hpp"
#include "liberty/writer.hpp"
#include "netlist/verilog.hpp"
#include "sta/engine.hpp"
#include "sta/sweep.hpp"
#include "sta_test_util.hpp"
#include "wave/ramp.hpp"
#include "wave/waveform.hpp"

namespace ic = waveletic::interconnect;
namespace lb = waveletic::liberty;
namespace nl = waveletic::netlist;
namespace st = waveletic::sta;
namespace tu = waveletic::statest;
namespace wv = waveletic::wave;

namespace {

std::string golden_dir() {
  return std::string(WAVELETIC_TEST_DIR) + "/golden";
}

bool update_mode() {
  const char* e = std::getenv("WAVELETIC_UPDATE_GOLDEN");
  return e != nullptr && *e != '\0' && *e != '0';
}

/// The reference netlist: two reconvergent output cones over the fast
/// VCL013 cell subset.  This string is the source of truth; update mode
/// writes it to golden.v, normal mode parses the committed file.
constexpr const char* kGoldenVerilog = R"(module golden (a, b, c, y, z);
  input a, b, c;
  output y, z;
  wire n1, n2, n3, n4, n5, n6;
  INVX1   u1 (.A(a),  .Y(n1));
  INVX4   u2 (.A(b),  .Y(n2));
  NAND2X1 u3 (.A(n1), .B(n2), .Y(n3));
  INVX1   u4 (.A(c),  .Y(n4));
  NAND2X1 u5 (.A(n3), .B(n4), .Y(n5));
  INVX4   u6 (.A(n5), .Y(y));
  NAND2X1 u7 (.A(n3), .B(n5), .Y(n6));
  INVX1   u8 (.A(n6), .Y(z));
endmodule
)";

void constrain(st::StaEngine& sta) {
  sta.set_input("a", 0.00e-9, 90e-12);
  sta.set_input("b", 0.02e-9, 120e-12);
  sta.set_input("c", 0.05e-9, 75e-12);
  sta.set_output_load("y", 5e-15);
  sta.set_output_load("z", 8e-15);
  sta.set_required("y", 1.5e-9);
  sta.set_required("z", 1.6e-9);
}

/// Aggressor scenario with a RATIONAL bump (1/(1+x²)² instead of a
/// Gaussian): bit-for-bit reproducible on any libm.
st::NoiseScenario rational_bump_scenario(const std::string& net,
                                         double victim_arrival,
                                         double victim_slew, double vdd,
                                         double alignment, double strength) {
  const auto ramp =
      wv::Ramp::from_arrival_slew(victim_arrival, victim_slew, vdd);
  const auto clean = ramp.denormalized(wv::Polarity::kFalling, 256);
  std::vector<double> t(clean.times().begin(), clean.times().end());
  std::vector<double> v(clean.values().begin(), clean.values().end());
  const double center = victim_arrival + alignment;
  const double sigma = 0.5 * victim_slew;
  for (size_t i = 0; i < t.size(); ++i) {
    const double x = (t[i] - center) / sigma;
    const double d = 1.0 + x * x;
    v[i] += strength / (d * d);  // pushes against the falling edge
  }
  st::NoiseScenario s;
  std::ostringstream name;
  name << net << "@rat," << alignment * 1e12 << "ps," << strength << "V";
  s.name = name.str();
  s.annotate(net, wv::Waveform(std::move(t), std::move(v)),
             wv::Polarity::kFalling);
  return s;
}

/// Everything the oracle pins, as ordered (key, value) pairs.
struct Record {
  std::vector<std::pair<std::string, double>> kv;
  void add(const std::string& key, double value) {
    kv.emplace_back(key, value);
  }
};

Record compute(const lb::Library& lib, const nl::Netlist& net) {
  Record rec;
  // Clean single run first (also supplies the victim ramp for bumps).
  st::StaEngine clean(net, lib);
  constrain(clean);
  clean.set_threads(1);
  clean.run();
  rec.add("clean.worst_slack", clean.worst_slack());
  const auto& victim = clean.timing("u5/A", st::RiseFall::kFall);
  rec.add("clean.u5A.fall.arrival", victim.arrival);
  rec.add("clean.u5A.fall.slew", victim.slew);

  // 2 corners × 4 rational-bump scenarios on net n3.
  st::SweepSpec spec;
  st::Corner slow;
  slow.name = "slow";
  slow.cell_delay_scale = 1.15;
  slow.cell_slew_scale = 1.10;
  slow.wire_delay_scale = 1.20;
  spec.corners = {st::Corner{}, slow};
  const double align[4] = {-30e-12, -10e-12, 10e-12, 30e-12};
  const double strength[4] = {0.30, 0.40, 0.45, 0.55};
  for (int i = 0; i < 4; ++i) {
    spec.scenarios.push_back(rational_bump_scenario(
        "n3", victim.arrival, victim.slew, lib.nom_voltage, align[i],
        strength[i]));
  }
  spec.threads = 2;

  // Waveform crossings of each annotation (pins the wave kernels too).
  for (size_t s = 0; s < spec.scenarios.size(); ++s) {
    const auto& w = spec.scenarios[s].entries.front().annotation.waveform;
    const double mid = 0.5 * lib.nom_voltage;
    const auto crossings = w.crossings(mid);
    std::ostringstream k;
    k << "scenario" << s;
    rec.add(k.str() + ".crossing_count",
            static_cast<double>(crossings.size()));
    if (!crossings.empty()) {
      rec.add(k.str() + ".first_crossing", crossings.front());
      rec.add(k.str() + ".last_crossing", crossings.back());
    }
  }

  // Sharded and per-level schedules must agree bitwise; record the
  // sharded one.
  st::StaEngine sta(net, lib);
  constrain(sta);
  spec.shard = true;
  const auto result = sta.sweep(spec);
  spec.shard = false;
  spec.threads = 1;
  const auto oracle = sta.sweep(spec);
  for (size_t p = 0; p < result.size(); ++p) {
    EXPECT_TRUE(tu::states_bitwise_equal(oracle.state(p), result.state(p),
                                         &sta))
        << "sharded vs per-level divergence at point " << p;
  }

  for (size_t c = 0; c < result.num_corners(); ++c) {
    for (size_t s = 0; s < result.num_scenarios(); ++s) {
      const size_t p = result.point(c, s);
      std::ostringstream k;
      k << "c" << c << ".s" << s;
      rec.add(k.str() + ".worst_slack", result.worst_slack(p));
      for (const char* out : {"y", "z"}) {
        for (int rf = 0; rf < 2; ++rf) {
          const auto r = static_cast<st::RiseFall>(rf);
          const auto& t = result.timing(p, out, r);
          std::ostringstream kk;
          kk << k.str() << "." << out << "." << st::to_string(r);
          rec.add(kk.str() + ".arrival", t.arrival);
          rec.add(kk.str() + ".slew", t.slew);
        }
      }
      const auto ce = result.critical_endpoint(p);
      rec.add(k.str() + ".critical_endpoint",
              static_cast<double>(ce.endpoint));
    }
  }
  return rec;
}

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void write_expected(const std::string& path, const Record& rec) {
  std::ofstream os(path);
  ASSERT_TRUE(os.good()) << "cannot write " << path;
  os << "# golden expected values — regenerate with "
        "WAVELETIC_UPDATE_GOLDEN=1 ./build/test_golden\n";
  for (const auto& [key, value] : rec.kv) {
    os << key << ' ' << format_value(value) << '\n';
  }
}

std::map<std::string, std::string> read_expected(const std::string& path) {
  std::ifstream is(path);
  std::map<std::string, std::string> out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.find(' ');
    if (space == std::string::npos) continue;
    out.emplace(line.substr(0, space), line.substr(space + 1));
  }
  return out;
}

}  // namespace

TEST(Golden, EndToEndRegressionToleranceZero) {
  const std::string dir = golden_dir();
  if (update_mode()) {
    // Regenerate all three artifacts: the characterized library (the
    // only non-portable step — that is WHY it is committed), the
    // netlist, and the expected values.
    const lb::Library lib = tu::vcl013();
    lb::write_liberty_file(dir + "/golden.lib", lib);
    {
      std::ofstream os(dir + "/golden.v");
      ASSERT_TRUE(os.good());
      os << kGoldenVerilog;
    }
    const auto relib = lb::parse_liberty_file(dir + "/golden.lib");
    const auto net = nl::parse_verilog_file(dir + "/golden.v");
    Record rec = compute(relib, net);
    write_expected(dir + "/expected.txt", rec);
    GTEST_SKIP() << "golden artifacts regenerated in " << dir
                 << " — commit them";
  }

  const lb::Library lib = lb::parse_liberty_file(dir + "/golden.lib");
  const auto net = nl::parse_verilog_file(dir + "/golden.v");
  const Record rec = compute(lib, net);
  const auto expected = read_expected(dir + "/expected.txt");
  ASSERT_FALSE(expected.empty())
      << "missing/empty " << dir << "/expected.txt — run with "
      << "WAVELETIC_UPDATE_GOLDEN=1 to generate";
  ASSERT_EQ(rec.kv.size(), expected.size())
      << "value-set shape changed — regenerate the golden file";
  for (const auto& [key, value] : rec.kv) {
    const auto it = expected.find(key);
    ASSERT_NE(it, expected.end()) << "expected.txt lacks key " << key;
    // Tolerance zero: the %.17g strings must match exactly.
    EXPECT_EQ(format_value(value), it->second) << "key " << key;
  }
}

TEST(Golden, CoupledBumpShapeToleranceZero) {
  // The coupled-line bump synthesis is +,−,×,÷ only (linear RC ladder,
  // PWL ramp source, LU transient, linear resampling) — no libm — so
  // every sample is pinnable at tolerance zero like the main oracle.
  const std::string dir = golden_dir();
  Record rec;
  const auto pin = [&rec](const std::string& prefix,
                          const wv::Waveform& shape) {
    rec.add(prefix + ".samples", static_cast<double>(shape.size()));
    for (size_t i = 0; i < shape.size(); ++i) {
      std::ostringstream k;
      k << prefix << "." << i;
      rec.add(k.str() + ".t", shape.time(i));
      rec.add(k.str() + ".v", shape.value(i));
    }
  };
  // The default Figure 1 testbench …
  pin("default", ic::coupled_bump_shape(ic::CoupledLinePair{}));
  // … and a detuned variant (stronger coupling, weaker holding driver,
  // slower ramp, coarser sampling) so the parameter plumbing is pinned
  // too, not just one operating point.
  {
    ic::CoupledLinePair pair;
    pair.cm_total = 180e-15;
    pair.drive_resistance = 90.0;
    pair.hold_resistance = 200.0;
    pair.load_cap = 3e-15;
    ic::CoupledBumpOptions opts;
    opts.transition = 50e-12;
    opts.steps = 128;
    opts.samples = 33;
    pin("detuned", ic::coupled_bump_shape(pair, opts));
  }

  const std::string path = dir + "/coupled_bump.txt";
  if (update_mode()) {
    write_expected(path, rec);
    GTEST_SKIP() << "coupled-bump golden regenerated at " << path
                 << " — commit it";
  }
  const auto expected = read_expected(path);
  ASSERT_FALSE(expected.empty())
      << "missing/empty " << path << " — run with "
      << "WAVELETIC_UPDATE_GOLDEN=1 to generate";
  ASSERT_EQ(rec.kv.size(), expected.size())
      << "value-set shape changed — regenerate the golden file";
  for (const auto& [key, value] : rec.kv) {
    const auto it = expected.find(key);
    ASSERT_NE(it, expected.end()) << "coupled_bump.txt lacks key " << key;
    EXPECT_EQ(format_value(value), it->second) << "key " << key;
  }
}
