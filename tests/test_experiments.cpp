// End-to-end experiment harness tests at reduced scale: the Table 1
// accuracy pipeline and the Figure 2 data generator.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "experiments/accuracy.hpp"
#include "experiments/figures.hpp"
#include "util/error.hpp"
#include "wave/metrics.hpp"

namespace ex = waveletic::experiments;
namespace no = waveletic::noise;
namespace wu = waveletic::util;

namespace {

ex::AccuracyOptions small_options() {
  ex::AccuracyOptions opt;
  opt.bench = no::TestbenchSpec::config1();
  opt.bench.victim_t50 = 1.5e-9;
  opt.cases = 7;
  opt.offset_range = 0.6e-9;  // the strongly-interacting window
  opt.runner.dt = 2e-12;
  return opt;
}

/// Shared small run (the pipeline is expensive).
const ex::AccuracyResult& small_result() {
  static const ex::AccuracyResult result = ex::run_accuracy(small_options());
  return result;
}

}  // namespace

TEST(Accuracy, ProducesStatsForAllSixMethods) {
  const auto& result = small_result();
  ASSERT_EQ(result.methods.size(), 6u);
  ASSERT_EQ(result.stats.size(), 6u);
  ASSERT_EQ(result.cases.size(), 7u);
  for (const auto& st : result.stats) {
    SCOPED_TRACE(st.method);
    EXPECT_TRUE(std::isfinite(st.max_error));
    EXPECT_TRUE(std::isfinite(st.avg_error));
    EXPECT_GE(st.max_error, st.avg_error);
    EXPECT_GT(st.max_error, 0.0);
    // Sanity ceiling.  Multi-event waveforms (glitch re-crossing 50%
    // while the skewed receiver ignores it) legitimately cost any
    // single-ramp technique a few hundred ps in the worst case.
    EXPECT_LT(st.max_error, 400e-12);
  }
}

TEST(Accuracy, SgdpBeatsTheShapeBlindBaselinesPerCase) {
  // Per-case comparison (robust to the rare noise-marginal "cliff"
  // cases where every technique pessimizes; see EXPERIMENTS.md): SGDP
  // must match or beat LSF3 and E4 on the majority of cases.  The full
  // aggregate comparison lives in bench_table1_accuracy.
  const auto& result = small_result();
  size_t m_sgdp = 0, m_lsf3 = 0, m_e4 = 0;
  for (size_t i = 0; i < result.methods.size(); ++i) {
    if (result.methods[i] == "SGDP") m_sgdp = i;
    if (result.methods[i] == "LSF3") m_lsf3 = i;
    if (result.methods[i] == "E4") m_e4 = i;
  }
  int beats_lsf3 = 0, beats_e4 = 0;
  for (const auto& c : result.cases) {
    const double s = std::fabs(c.arrival_errors[m_sgdp]);
    if (s <= std::fabs(c.arrival_errors[m_lsf3]) + 1e-15) ++beats_lsf3;
    if (s <= std::fabs(c.arrival_errors[m_e4]) + 1e-15) ++beats_e4;
  }
  const int majority = static_cast<int>(result.cases.size()) / 2 + 1;
  EXPECT_GE(beats_lsf3, majority);
  EXPECT_GE(beats_e4, majority);
}

TEST(Accuracy, CaseRecordsAreComplete) {
  const auto& result = small_result();
  for (const auto& c : result.cases) {
    EXPECT_EQ(c.arrival_errors.size(), result.methods.size());
    EXPECT_EQ(c.slew_metric_errors.size(), result.methods.size());
    // Negative golden delays are legitimate: the skewed receiver may
    // ignore a marginal late re-cross of the input's 50% level, putting
    // the output crossing before the input's *latest* crossing.
    EXPECT_GT(c.golden_delay, -1e-9);
    EXPECT_LT(c.golden_delay, 1e-9);
    EXPECT_GT(c.golden_arrival, 0.0);
  }
  EXPECT_THROW((void)result.stat("NOPE"), wu::Error);
}

TEST(Accuracy, TableRendersBothConfigs) {
  const auto& result = small_result();
  std::ostringstream os;
  ex::print_accuracy_table(os, {"Cfg I"}, {&result});
  const auto text = os.str();
  for (const char* method : {"P1", "P2", "LSF3", "E4", "WLS5", "SGDP"}) {
    EXPECT_NE(text.find(method), std::string::npos) << method;
  }
  EXPECT_NE(text.find("Cfg I Max"), std::string::npos);
}

TEST(Accuracy, CsvDumpHasHeaderAndRows) {
  const auto& result = small_result();
  const auto path =
      (std::filesystem::temp_directory_path() / "waveletic_cases.csv")
          .string();
  ex::write_cases_csv(path, result);
  std::ifstream file(path);
  std::string header;
  std::getline(file, header);
  EXPECT_NE(header.find("err_SGDP_s"), std::string::npos);
  size_t rows = 0;
  std::string line;
  while (std::getline(file, line)) ++rows;
  EXPECT_EQ(rows, result.cases.size());
  std::filesystem::remove(path);
}

TEST(Figure2, CurvesHaveThePaperShape) {
  ex::Figure2Options opt;
  opt.bench.victim_t50 = 1.5e-9;
  opt.runner.dt = 2e-12;
  opt.aggressor_offset = 40e-12;
  const auto data = ex::figure2_data(opt);

  // 2a: normalized noiseless curves rise 0 -> vdd; rho is a bump that
  // lives inside the input critical region.
  EXPECT_NEAR(data.noiseless_in.value(0), 0.0, 0.05);
  EXPECT_GT(data.noiseless_in.max_value(), 1.1);
  EXPECT_GT(data.rho_noiseless.max_value(), 0.5);

  // 2b: gamma_eff is a ramp between the rails; v_out_eff approximates
  // the golden noisy output arrival.
  EXPECT_NEAR(data.gamma_eff.min_value(), 0.0, 1e-9);
  EXPECT_NEAR(data.gamma_eff.max_value(), 1.2, 1e-9);
  const auto golden =
      data.noisy_out.first_crossing(0.6);  // normalized mid-level
  const auto eff = data.v_out_eff.first_crossing(0.6);
  ASSERT_TRUE(golden && eff);
  EXPECT_NEAR(*eff, *golden, 25e-12);
}

TEST(Figure2, CsvFilesWritten) {
  ex::Figure2Options opt;
  opt.bench.victim_t50 = 1.5e-9;
  opt.runner.dt = 2e-12;
  const auto data = ex::figure2_data(opt);
  const auto dir = std::filesystem::temp_directory_path() / "waveletic_fig2";
  std::filesystem::create_directories(dir);
  ex::write_figure2_csv(dir.string(), data);
  EXPECT_TRUE(std::filesystem::exists(dir / "fig2a.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir / "fig2b.csv"));
  std::filesystem::remove_all(dir);
}
