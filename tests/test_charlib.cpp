// Characterization-flow tests: VCL013 cell construction, analytic pin
// caps, NLDM table generation through the transient simulator, and
// physical sanity of the resulting library.

#include <gtest/gtest.h>

#include <memory>

#include "charlib/characterize.hpp"
#include "charlib/vcl013.hpp"
#include "liberty/writer.hpp"
#include "liberty/parser.hpp"
#include "spice/devices.hpp"
#include "spice/engine.hpp"
#include "util/error.hpp"
#include "wave/metrics.hpp"

namespace cl = waveletic::charlib;
namespace lb = waveletic::liberty;
namespace sp = waveletic::spice;
namespace wv = waveletic::wave;
namespace wu = waveletic::util;

namespace {

/// Characterized-fast library shared across tests in this binary.
const lb::Library& fast_lib() {
  static const lb::Library lib = cl::build_vcl013_library_fast();
  return lib;
}

}  // namespace

TEST(Vcl013, CellListContainsPaperDrives) {
  const auto cells = cl::vcl013_cells();
  for (const char* name : {"INVX1", "INVX4", "INVX16", "INVX64"}) {
    SCOPED_TRACE(name);
    EXPECT_NO_THROW((void)cl::vcl013_cell(name));
  }
  EXPECT_THROW((void)cl::vcl013_cell("INVX3"), wu::Error);
  EXPECT_GE(cells.size(), 8u);
}

TEST(Vcl013, PinCapScalesWithDrive) {
  const cl::Pdk pdk;
  const double c1 =
      cl::input_pin_capacitance(pdk, cl::vcl013_cell("INVX1"), "A");
  const double c4 =
      cl::input_pin_capacitance(pdk, cl::vcl013_cell("INVX4"), "A");
  EXPECT_NEAR(c4 / c1, 4.0, 1e-9);
  EXPECT_GT(c1, 0.5e-15);
  EXPECT_LT(c1, 5e-15);
}

TEST(Vcl013, InstantiateInverterAndSimulate) {
  const cl::Pdk pdk;
  sp::Circuit ckt;
  cl::add_supply(ckt, pdk);
  cl::instantiate_cell(ckt, pdk, cl::vcl013_cell("INVX4"), "u1",
                       {{"A", "in"}, {"Y", "out"}}, "vdd");
  ckt.emplace<sp::Capacitor>("cl", ckt.node("out"), sp::kGround, 10e-15);
  ckt.emplace<sp::VoltageSource>(
      "vin", ckt.node("in"), sp::kGround,
      std::make_unique<sp::RampStimulus>(0.5e-9, 150e-12, 0.0, pdk.vdd,
                                         true));
  sp::TransientSpec spec;
  spec.t_stop = 2e-9;
  spec.dt = 1e-12;
  const auto res = sp::transient(ckt, spec);
  EXPECT_NEAR(res.waveform("out").at(2e-9), 0.0, 0.02);
}

TEST(Vcl013, Nand2TruthTableAtDc) {
  const cl::Pdk pdk;
  const auto run = [&](double va, double vb) {
    sp::Circuit ckt;
    cl::add_supply(ckt, pdk);
    cl::instantiate_cell(ckt, pdk, cl::vcl013_cell("NAND2X1"), "u1",
                         {{"A", "a"}, {"B", "b"}, {"Y", "y"}}, "vdd");
    ckt.emplace<sp::VoltageSource>("va", ckt.node("a"), sp::kGround,
                                   std::make_unique<sp::DcStimulus>(va));
    ckt.emplace<sp::VoltageSource>("vb", ckt.node("b"), sp::kGround,
                                   std::make_unique<sp::DcStimulus>(vb));
    const auto x = sp::dc_operating_point(ckt);
    return x[static_cast<size_t>(ckt.find_node("y") - 1)];
  };
  EXPECT_NEAR(run(0.0, 0.0), pdk.vdd, 0.01);
  EXPECT_NEAR(run(pdk.vdd, 0.0), pdk.vdd, 0.01);
  EXPECT_NEAR(run(0.0, pdk.vdd), pdk.vdd, 0.01);
  EXPECT_NEAR(run(pdk.vdd, pdk.vdd), 0.0, 0.01);
}

TEST(Vcl013, Nor2TruthTableAtDc) {
  const cl::Pdk pdk;
  const auto run = [&](double va, double vb) {
    sp::Circuit ckt;
    cl::add_supply(ckt, pdk);
    cl::instantiate_cell(ckt, pdk, cl::vcl013_cell("NOR2X1"), "u1",
                         {{"A", "a"}, {"B", "b"}, {"Y", "y"}}, "vdd");
    ckt.emplace<sp::VoltageSource>("va", ckt.node("a"), sp::kGround,
                                   std::make_unique<sp::DcStimulus>(va));
    ckt.emplace<sp::VoltageSource>("vb", ckt.node("b"), sp::kGround,
                                   std::make_unique<sp::DcStimulus>(vb));
    const auto x = sp::dc_operating_point(ckt);
    return x[static_cast<size_t>(ckt.find_node("y") - 1)];
  };
  EXPECT_NEAR(run(0.0, 0.0), pdk.vdd, 0.01);
  EXPECT_NEAR(run(pdk.vdd, 0.0), 0.0, 0.01);
  EXPECT_NEAR(run(0.0, pdk.vdd), 0.0, 0.01);
  EXPECT_NEAR(run(pdk.vdd, pdk.vdd), 0.0, 0.01);
}

TEST(Vcl013, MissingConnectionThrows) {
  const cl::Pdk pdk;
  sp::Circuit ckt;
  cl::add_supply(ckt, pdk);
  EXPECT_THROW(cl::instantiate_cell(ckt, pdk, cl::vcl013_cell("INVX1"), "u",
                                    {{"A", "in"}}, "vdd"),
               wu::Error);
}

TEST(Characterize, FastLibraryHasCompleteArcs) {
  const auto& lib = fast_lib();
  ASSERT_NE(lib.find_cell("INVX1"), nullptr);
  ASSERT_NE(lib.find_cell("INVX4"), nullptr);
  const auto& y = lib.cell("INVX1").output_pin();
  ASSERT_EQ(y.arcs.size(), 1u);
  const auto& arc = y.arcs[0];
  EXPECT_EQ(arc.sense, lb::TimingSense::kNegativeUnate);
  EXPECT_FALSE(arc.cell_rise.empty());
  EXPECT_FALSE(arc.cell_fall.empty());
  EXPECT_FALSE(arc.rise_transition.empty());
  EXPECT_FALSE(arc.fall_transition.empty());
}

TEST(Characterize, DelayMonotoneInLoad) {
  const auto& arc = fast_lib().cell("INVX1").output_pin().arcs[0];
  double prev = -1.0;
  for (double load = 2e-15; load <= 40e-15; load += 2e-15) {
    const double d = arc.rise(150e-12, load).delay;
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(Characterize, OutputSlewMonotoneInLoad) {
  const auto& arc = fast_lib().cell("INVX1").output_pin().arcs[0];
  double prev = -1.0;
  for (double load = 2e-15; load <= 40e-15; load += 4e-15) {
    const double s = arc.fall(150e-12, load).out_slew;
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(Characterize, StrongerDriveIsFaster) {
  const auto& lib = fast_lib();
  const auto& a1 = lib.cell("INVX1").output_pin().arcs[0];
  const auto& a4 = lib.cell("INVX4").output_pin().arcs[0];
  // Same absolute load: X4 must be markedly faster.
  const double load = 20e-15;
  EXPECT_LT(a4.rise(150e-12, load).delay, a1.rise(150e-12, load).delay);
  EXPECT_LT(a4.fall(150e-12, load).out_slew,
            a1.fall(150e-12, load).out_slew);
}

TEST(Characterize, TableValuesArePhysical) {
  const auto& lib = fast_lib();
  for (const auto& cell : lib.cells) {
    for (const auto& arc : cell.output_pin().arcs) {
      for (double v : arc.cell_rise.values()) {
        // Slightly negative 50%-to-50% delays are legitimate for the
        // skewed cells (threshold below mid-rail), as in real NLDM
        // libraries; bound them to a few picoseconds.
        EXPECT_GT(v, -5e-12);
        EXPECT_LT(v, 5e-9);
      }
      for (double v : arc.rise_transition.values()) {
        EXPECT_GT(v, 0.0);  // transition times are strictly positive
        EXPECT_LT(v, 5e-9);
      }
    }
  }
}

TEST(Characterize, NldmPredictsSimulatedDelayOffGrid) {
  // The library must predict a fresh transistor-level simulation at an
  // off-grid (slew, load) point reasonably well: this validates the
  // whole characterize->interpolate pipeline.
  const cl::Pdk pdk;
  const auto& arc = fast_lib().cell("INVX4").output_pin().arcs[0];
  const double slew = 120e-12;  // off-grid
  const double load = 18e-15;   // off-grid

  sp::Circuit ckt;
  cl::add_supply(ckt, pdk);
  cl::instantiate_cell(ckt, pdk, cl::vcl013_cell("INVX4"), "u1",
                       {{"A", "in"}, {"Y", "out"}}, "vdd");
  ckt.emplace<sp::Capacitor>("cl", ckt.node("out"), sp::kGround, load);
  ckt.emplace<sp::VoltageSource>(
      "vin", ckt.node("in"), sp::kGround,
      std::make_unique<sp::RampStimulus>(0.6e-9, slew / 0.8, 0.0, pdk.vdd,
                                         true));
  sp::TransientSpec spec;
  spec.t_stop = 3e-9;
  spec.dt = 1e-12;
  const auto res = sp::transient(ckt, spec);
  const auto sim_delay = wv::gate_delay_50(
      res.waveform("in"), wv::Polarity::kRising, res.waveform("out"),
      wv::Polarity::kFalling, pdk.vdd);
  ASSERT_TRUE(sim_delay.has_value());
  const double table_delay = arc.fall(slew, load).delay;
  EXPECT_NEAR(table_delay, *sim_delay,
              std::max(3e-12, 0.12 * *sim_delay));
}

TEST(Characterize, LibraryRoundTripsThroughLiberty) {
  const auto& lib = fast_lib();
  const auto text = lb::to_liberty_string(lib);
  const auto lib2 = lb::parse_liberty(text);
  const auto& a = lib.cell("INVX1").output_pin().arcs[0];
  const auto& b = lib2.cell("INVX1").output_pin().arcs[0];
  for (double slew : {60e-12, 200e-12}) {
    for (double load : {3e-15, 25e-15}) {
      EXPECT_NEAR(b.rise(slew, load).delay, a.rise(slew, load).delay, 1e-14);
    }
  }
}
