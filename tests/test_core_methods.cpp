// Tests for the equivalent-waveform techniques (the paper's core):
// exactness on clean ramps, the semantics of each baseline, the WLS5
// blind spot vs SGDP's voltage remapping, non-overlap alignment,
// degenerate fallbacks, and property sweeps over noise parameters.

#include <gtest/gtest.h>

#include <cmath>

#include "core/energy.hpp"
#include "core/lsf.hpp"
#include "core/method.hpp"
#include "core/point_based.hpp"
#include "core/sensitivity.hpp"
#include "core/sgdp.hpp"
#include "core/wls.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "wave/metrics.hpp"

namespace co = waveletic::core;
namespace wv = waveletic::wave;
namespace wu = waveletic::util;

namespace {

constexpr double kVdd = 1.2;

/// Clean rising input: 150 ps 10-90 slew, t50 = 1 ns.
wv::Waveform clean_input() {
  return wv::Ramp::from_arrival_slew(1e-9, 150e-12, kVdd).sampled(1024);
}

/// Noiseless "gate output" (buffer-like): slightly sharper and 30 ps
/// later, so the transitions overlap broadly as in a single-stage gate
/// (the output starts moving while the input is still switching).
wv::Waveform clean_output() {
  return wv::Ramp::from_arrival_slew(1.03e-9, 120e-12, kVdd).sampled(1024);
}

/// Adds a Gaussian bump (possibly negative) to a waveform.
wv::Waveform with_bump(const wv::Waveform& base, double amp, double center,
                       double sigma) {
  std::vector<double> t(base.times().begin(), base.times().end());
  std::vector<double> v(base.values().begin(), base.values().end());
  for (size_t i = 0; i < t.size(); ++i) {
    v[i] += amp * std::exp(-std::pow((t[i] - center) / sigma, 2.0));
  }
  return wv::Waveform(std::move(t), std::move(v));
}

co::MethodInput make_input(const wv::Waveform& noisy,
                           const wv::Waveform& clean_in,
                           const wv::Waveform& clean_out) {
  co::MethodInput in;
  in.noisy_in = &noisy;
  in.noiseless_in = &clean_in;
  in.noiseless_out = &clean_out;
  in.in_polarity = wv::Polarity::kRising;
  in.out_polarity = wv::Polarity::kRising;  // buffer-style fixtures
  in.vdd = kVdd;
  return in;
}

}  // namespace

// ---------------------------------------------------------------------------
// Exactness on clean ramps: every technique must reproduce the ramp.
// ---------------------------------------------------------------------------

TEST(MethodsOnCleanRamp, AllTechniquesRecoverTheRamp) {
  const auto clean = clean_input();
  const auto out = clean_output();
  const auto input = make_input(clean, clean, out);
  for (const auto& method : co::all_methods()) {
    SCOPED_TRACE(std::string(method->name()));
    const auto fit = method->fit(input);
    EXPECT_FALSE(fit.degenerate_fallback);
    EXPECT_NEAR(fit.ramp.t50(), 1e-9, 2e-12);
    EXPECT_NEAR(fit.ramp.slew(), 150e-12, 6e-12);
  }
}

// ---------------------------------------------------------------------------
// Baseline semantics
// ---------------------------------------------------------------------------

TEST(P1, UsesNoiselessSlewAndLatestNoisyArrival) {
  const auto clean = clean_input();
  const auto out = clean_output();
  // Deep dip after the first 50% crossing delays the last 50% crossing.
  const auto noisy = with_bump(clean, -0.55, 1.06e-9, 30e-12);
  ASSERT_GT(noisy.crossings(0.5 * kVdd).size(), 1u);
  const auto fit = co::P1Method{}.fit(make_input(noisy, clean, out));
  EXPECT_NEAR(fit.ramp.slew(), 150e-12, 3e-12);  // noiseless slew kept
  EXPECT_NEAR(fit.ramp.t50(), *noisy.last_crossing(0.5 * kVdd), 1e-13);
}

TEST(P2, SpansEarliestLowToLatestHighCrossing) {
  const auto clean = clean_input();
  const auto out = clean_output();
  const auto noisy = with_bump(clean, -0.45, 1.1e-9, 40e-12);
  const auto fit = co::P2Method{}.fit(make_input(noisy, clean, out));
  const double expected_slew =
      *noisy.last_crossing(0.9 * kVdd) - *noisy.first_crossing(0.1 * kVdd);
  EXPECT_NEAR(fit.ramp.slew(), expected_slew, 1e-13);
  EXPECT_GT(fit.ramp.slew(), 150e-12);  // noise widened the span
}

TEST(E4, CleanRampSlopeIsExact) {
  // For the clean ramp the enclosed area is the triangle (Vdd/2)²/(2a).
  const auto clean = clean_input();
  const auto fit =
      co::E4Method{}.fit(make_input(clean, clean, clean_output()));
  EXPECT_NEAR(fit.ramp.slew(), 150e-12, 2e-12);
  EXPECT_NEAR(fit.ramp.t50(), 1e-9, 1e-12);
}

TEST(E4, MultipleCrossingsMakeItPessimistic) {
  const auto clean = clean_input();
  const auto out = clean_output();
  const auto noisy = with_bump(clean, -0.5, 1.08e-9, 25e-12);
  ASSERT_GE(noisy.crossings(0.5 * kVdd).size(), 3u);
  const auto fit = co::E4Method{}.fit(make_input(noisy, clean, out));
  // Arrival pinned at the (late) last crossing: later than the clean 1ns.
  EXPECT_GT(fit.ramp.t50(), 1.05e-9);
}

TEST(Lsf3, MatchesUnweightedLeastSquares) {
  const auto clean = clean_input();
  const auto noisy = with_bump(clean, 0.2, 0.95e-9, 50e-12);
  const auto input = make_input(noisy, clean, clean_output());
  const auto fit = co::Lsf3Method{}.fit(input);
  EXPECT_FALSE(fit.degenerate_fallback);
  EXPECT_GT(fit.ramp.a(), 0.0);
  // The helper and the method agree.
  const auto helper = co::lsf3_fit(noisy, kVdd, input.samples);
  EXPECT_NEAR(fit.ramp.t50(), helper.ramp.t50(), 1e-15);
}

// ---------------------------------------------------------------------------
// Sensitivity curve
// ---------------------------------------------------------------------------

TEST(Sensitivity, PlateauEqualsSlopeRatioForOverlappingRamps) {
  const auto in = clean_input();                      // slew 150 ps
  const auto out = clean_output();                    // slew 90 ps
  const auto rho = co::SensitivityCurve::build(in, out, kVdd, true);
  EXPECT_FALSE(rho.aligned());
  // In the overlap mid-zone the derivative ratio is s_in/s_out = 1.25.
  EXPECT_NEAR(rho.rho_at_time(1.0e-9), 150.0 / 120.0, 0.15);
  // Outside the noiseless critical region the curve is exactly zero.
  EXPECT_DOUBLE_EQ(rho.rho_at_time(0.8e-9), 0.0);
  EXPECT_DOUBLE_EQ(rho.rho_at_time(1.4e-9), 0.0);
}

TEST(Sensitivity, VoltageIndexMatchesTimeIndex) {
  const auto in = clean_input();
  const auto out = clean_output();
  const auto rho = co::SensitivityCurve::build(in, out, kVdd, true);
  for (double t : {0.95e-9, 1.0e-9, 1.05e-9}) {
    const double v = in.at(t);
    EXPECT_NEAR(rho.rho_at_voltage(v), rho.rho_at_time(t), 0.05)
        << "t=" << t;
  }
  EXPECT_DOUBLE_EQ(rho.rho_at_voltage(0.05 * kVdd), 0.0);
  EXPECT_DOUBLE_EQ(rho.rho_at_voltage(0.98 * kVdd), 0.0);
}

TEST(Sensitivity, DeltaIsGateDelay) {
  const auto rho =
      co::SensitivityCurve::build(clean_input(), clean_output(), kVdd, true);
  EXPECT_NEAR(rho.delta(), 0.03e-9, 2e-12);
}

TEST(Sensitivity, AlignsDisjointTransitions) {
  const auto in = clean_input();
  const auto far_out =
      wv::Ramp::from_arrival_slew(2.5e-9, 90e-12, kVdd).sampled(1024);
  const auto rho = co::SensitivityCurve::build(in, far_out, kVdd, true);
  EXPECT_TRUE(rho.aligned());
  EXPECT_NEAR(rho.delta(), 1.5e-9, 5e-12);
  // After alignment the plateau is meaningful again.
  EXPECT_NEAR(rho.rho_at_time(1.0e-9), 150.0 / 90.0, 0.2);
  // Without alignment, rho over the input region is ~zero.
  const auto rho_raw = co::SensitivityCurve::build(in, far_out, kVdd, false);
  EXPECT_NEAR(rho_raw.rho_at_time(1.0e-9), 0.0, 1e-3);
}

TEST(Sensitivity, ThrowsOnIncompleteTransitions) {
  const auto in = clean_input();
  const wv::Waveform flat({0.0, 1e-9, 2e-9}, {0.0, 0.1, 0.2});
  EXPECT_THROW((void)co::SensitivityCurve::build(in, flat, kVdd, true),
               wu::Error);
}

// ---------------------------------------------------------------------------
// The paper's central mechanism: WLS5's blind spot vs SGDP Step 2
// ---------------------------------------------------------------------------

TEST(Wls5VsSgdp, NoiseOutsideNoiselessWindowIsInvisibleToWls5Only) {
  const auto clean = clean_input();
  const auto out = clean_output();
  // Deep dip *after* the noiseless 90% crossing (~1.075 ns): pulls the
  // waveform down near ground around 1.2 ns, far below any sensitivity
  // band edge, so the re-cross is unambiguously operative.
  const auto noisy = with_bump(clean, -1.05, 1.2e-9, 35e-12);
  ASSERT_GT(*noisy.last_crossing(0.5 * kVdd), 1.15e-9);

  const auto input = make_input(noisy, clean, out);
  const auto wls = co::Wls5Method{}.fit(input);
  const auto sgdp = co::SgdpMethod{}.fit(input);

  // WLS5 samples/weights only the noiseless window where the waveform is
  // clean: it reproduces the unperturbed ramp and misses the event.
  EXPECT_NEAR(wls.ramp.t50(), 1e-9, 3e-12);
  // SGDP's remapped sensitivity sees the dip and moves the ramp later.
  EXPECT_GT(sgdp.ramp.t50(), wls.ramp.t50() + 20e-12);
  EXPECT_FALSE(sgdp.degenerate_fallback);
}

TEST(Wls5VsSgdp, AgreeWhenNoiseSitsInsideTheNoiselessWindow) {
  const auto clean = clean_input();
  const auto out = clean_output();
  const auto noisy = with_bump(clean, -0.25, 1.0e-9, 40e-12);
  const auto input = make_input(noisy, clean, out);
  const auto wls = co::Wls5Method{}.fit(input);
  co::SgdpMethod::Options opt;
  opt.second_order = false;  // first-order SGDP ≈ WLS with remapped ρ
  const auto sgdp = co::SgdpMethod{opt}.fit(input);
  EXPECT_NEAR(sgdp.ramp.t50(), wls.ramp.t50(), 15e-12);
  EXPECT_NEAR(sgdp.ramp.slew(), wls.ramp.slew(), 30e-12);
}

TEST(Sgdp, SecondOrderTermRefinesNotExplodes) {
  const auto clean = clean_input();
  const auto out = clean_output();
  const auto noisy = with_bump(clean, -0.45, 1.1e-9, 35e-12);
  const auto input = make_input(noisy, clean, out);
  co::SgdpMethod::Options first, second;
  first.second_order = false;
  second.second_order = true;
  const auto f1 = co::SgdpMethod{first}.fit(input);
  const auto f2 = co::SgdpMethod{second}.fit(input);
  EXPECT_FALSE(f2.degenerate_fallback);
  // Refinement stays in the same neighbourhood (no divergence).
  EXPECT_NEAR(f2.ramp.t50(), f1.ramp.t50(), 60e-12);
  EXPECT_GT(f2.ramp.a(), 0.0);
}

TEST(Sgdp, EffectiveSensitivityFollowsNoisyVoltages) {
  const auto clean = clean_input();
  const auto out = clean_output();
  // Deep dip that re-crosses the 50% level: the arrival event then
  // extends through the dip and its recovery.
  const auto noisy = with_bump(clean, -0.8, 1.15e-9, 35e-12);
  ASSERT_GT(noisy.crossings(0.5 * kVdd).size(), 1u);
  co::SgdpMethod sgdp;
  const auto rho_eff = sgdp.effective_sensitivity(make_input(noisy, clean, out));
  ASSERT_GE(rho_eff.size(), 8u);
  // Where the dip pulls the voltage back into the active band, the
  // remapped sensitivity is nonzero even though the time is far outside
  // the noiseless critical region.
  bool late_nonzero = false;
  for (size_t i = 0; i < rho_eff.size(); ++i) {
    if (rho_eff.time(i) > 1.12e-9 && std::fabs(rho_eff.value(i)) > 0.2) {
      late_nonzero = true;
    }
  }
  EXPECT_TRUE(late_nonzero);
}

// ---------------------------------------------------------------------------
// Non-overlap handling (multi-stage / heavily loaded gates)
// ---------------------------------------------------------------------------

TEST(NonOverlap, Wls5DegeneratesSgdpSurvives) {
  const auto in = clean_input();
  // Output transition 1.5 ns later: disjoint from the input transition
  // (the multi-stage-cell case the paper discusses).
  const auto out =
      wv::Ramp::from_arrival_slew(2.5e-9, 90e-12, kVdd).sampled(1024);
  const auto noisy = with_bump(in, -0.3, 1.05e-9, 40e-12);
  const auto input = make_input(noisy, in, out);

  const auto wls = co::Wls5Method{}.fit(input);
  EXPECT_TRUE(wls.degenerate_fallback);  // ρ ≈ 0 everywhere

  const auto sgdp = co::SgdpMethod{}.fit(input);
  EXPECT_FALSE(sgdp.degenerate_fallback);
  EXPECT_GT(sgdp.ramp.a(), 0.0);
}

TEST(NonOverlap, LiteralDeltaShiftMovesGammaForward) {
  const auto in = clean_input();
  const auto out =
      wv::Ramp::from_arrival_slew(2.5e-9, 90e-12, kVdd).sampled(1024);
  const auto noisy = with_bump(in, -0.3, 1.05e-9, 40e-12);
  const auto input = make_input(noisy, in, out);

  co::SgdpMethod::Options plain, literal;
  literal.shift_gamma_by_delta = true;
  const auto base = co::SgdpMethod{plain}.fit(input);
  const auto shifted = co::SgdpMethod{literal}.fit(input);
  EXPECT_NEAR(shifted.ramp.t50() - base.ramp.t50(), 1.5e-9, 10e-12);
}

// ---------------------------------------------------------------------------
// Registry, sampling, input validation
// ---------------------------------------------------------------------------

TEST(Registry, AllSixMethodsInPaperOrder) {
  const auto methods = co::all_methods();
  ASSERT_EQ(methods.size(), 6u);
  const char* expected[] = {"P1", "P2", "LSF3", "E4", "WLS5", "SGDP"};
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(methods[i]->name(), expected[i]);
  }
}

TEST(Registry, MakeMethodByNameCaseInsensitive) {
  EXPECT_EQ(co::make_method("sgdp")->name(), "SGDP");
  EXPECT_EQ(co::make_method("Wls5")->name(), "WLS5");
  EXPECT_THROW((void)co::make_method("P9"), wu::Error);
}

TEST(Sampling, UniformInclusiveEndpoints) {
  const auto t = co::sample_times(1.0, 2.0, 5);
  ASSERT_EQ(t.size(), 5u);
  EXPECT_DOUBLE_EQ(t.front(), 1.0);
  EXPECT_DOUBLE_EQ(t.back(), 2.0);
  EXPECT_DOUBLE_EQ(t[2], 1.5);
  EXPECT_THROW((void)co::sample_times(1.0, 1.0, 5), wu::Error);
}

TEST(Validation, MissingWaveformsThrow) {
  co::MethodInput input;
  EXPECT_THROW((void)co::P2Method{}.fit(input), wu::Error);
  const auto clean = clean_input();
  input.noisy_in = &clean;
  input.vdd = kVdd;
  EXPECT_THROW((void)co::Wls5Method{}.fit(input), wu::Error);   // no pair
  EXPECT_NO_THROW((void)co::P2Method{}.fit(input));             // P2 ok
  input.samples = 2;
  EXPECT_THROW((void)co::P2Method{}.fit(input), wu::Error);     // P too small
}

TEST(Validation, FallingPolarityNormalization) {
  // A falling noisy transition with a falling->rising inverter output:
  // methods operate in the normalized frame and still succeed.
  const auto rising = clean_input();
  const auto falling = rising.flipped(kVdd);
  const auto out_rising = clean_output();
  co::MethodInput input;
  input.noisy_in = &falling;
  input.noiseless_in = &falling;
  input.noiseless_out = &out_rising;
  input.in_polarity = wv::Polarity::kFalling;
  input.out_polarity = wv::Polarity::kRising;
  input.vdd = kVdd;
  for (const auto& method : co::all_methods()) {
    SCOPED_TRACE(std::string(method->name()));
    const auto fit = method->fit(input);
    EXPECT_NEAR(fit.ramp.t50(), 1e-9, 3e-12);
  }
}

// ---------------------------------------------------------------------------
// Property sweep: random bumps never break any method
// ---------------------------------------------------------------------------

class NoisePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NoisePropertyTest, AllMethodsProduceSaneRampsUnderRandomNoise) {
  wu::Rng rng(static_cast<uint64_t>(GetParam()));
  const auto clean = clean_input();
  const auto out = clean_output();
  const auto methods = co::all_methods();
  for (int trial = 0; trial < 8; ++trial) {
    const double amp = rng.uniform(-0.6, 0.6);
    const double center = rng.uniform(0.85e-9, 1.3e-9);
    const double sigma = rng.uniform(15e-12, 60e-12);
    const auto noisy = with_bump(clean, amp, center, sigma);
    const auto input = make_input(noisy, clean, out);
    for (const auto& method : methods) {
      SCOPED_TRACE(std::string(method->name()) + " amp=" +
                   std::to_string(amp) + " c=" + std::to_string(center));
      const auto fit = method->fit(input);
      EXPECT_GT(fit.ramp.a(), 0.0);
      EXPECT_GT(fit.ramp.t50(), 0.7e-9);
      EXPECT_LT(fit.ramp.t50(), 1.6e-9);
      EXPECT_GT(fit.ramp.slew(), 5e-12);
      EXPECT_LT(fit.ramp.slew(), 2e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoisePropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));
