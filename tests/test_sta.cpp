// Mini-STA engine tests: arrival/slew propagation against hand-chained
// NLDM lookups, unateness, slack/required times, critical paths, cycle
// detection, parasitics, and the crosstalk (noisy-net) flow.

#include <gtest/gtest.h>

#include <cmath>

#include "charlib/characterize.hpp"
#include "core/method.hpp"
#include "core/point_based.hpp"
#include "netlist/verilog.hpp"
#include "sta/engine.hpp"
#include "util/error.hpp"
#include "wave/metrics.hpp"
#include "wave/ramp.hpp"

namespace cl = waveletic::charlib;
namespace co = waveletic::core;
namespace lb = waveletic::liberty;
namespace nl = waveletic::netlist;
namespace st = waveletic::sta;
namespace wv = waveletic::wave;
namespace wu = waveletic::util;

namespace {

const lb::Library& lib() {
  static const lb::Library library = cl::build_vcl013_library_fast();
  return library;
}

nl::Netlist inv_chain3() {
  return nl::parse_verilog(R"(
module chain (a, y);
  input a;
  output y;
  wire n1, n2;
  INVX1 u1 (.A(a), .Y(n1));
  INVX1 u2 (.A(n1), .Y(n2));
  INVX4 u3 (.A(n2), .Y(y));
endmodule
)");
}

}  // namespace

TEST(Sta, ChainArrivalMatchesHandChainedLookups) {
  const auto net = inv_chain3();
  st::StaEngine sta(net, lib());
  const double t0 = 0.1e-9;
  const double slew0 = 100e-12;
  sta.set_input("a", t0, slew0);
  const double load_y = 8e-15;
  sta.set_output_load("y", load_y);
  sta.run();

  // Hand-chain the same NLDM lookups (input rise -> y falls after 3
  // inversions... rise->fall->rise->fall).
  const auto& inv1 = lib().cell("INVX1");
  const auto& inv4 = lib().cell("INVX4");
  const double cap1 = inv1.find_pin("A")->capacitance;
  const double cap4 = inv4.find_pin("A")->capacitance;

  const auto& arc1 = inv1.output_pin().arcs[0];
  const auto& arc4 = inv4.output_pin().arcs[0];

  // u1 drives u2 (cap1); rise input -> fall output.
  const auto s1 = arc1.fall(slew0, cap1);
  // u2 drives u3 (cap4); fall input -> rise output.
  const auto s2 = arc1.rise(s1.out_slew, cap4);
  // u3 drives y (load_y); rise input -> fall output.
  const auto s3 = arc4.fall(s2.out_slew, load_y);
  const double expected = t0 + s1.delay + s2.delay + s3.delay;

  const auto& yt = sta.timing("y", st::RiseFall::kFall);
  ASSERT_TRUE(yt.valid);
  EXPECT_NEAR(yt.arrival, expected, 1e-15);
  EXPECT_NEAR(yt.slew, s3.out_slew, 1e-15);
}

TEST(Sta, PolarityAlternatesThroughInverters) {
  const auto net = inv_chain3();
  st::StaEngine sta(net, lib());
  sta.set_input("a", st::RiseFall::kRise, 0.0, 100e-12);
  sta.set_output_load("y", 5e-15);
  sta.run();
  // Only the rise input was constrained: n1 falls, n2 rises, y falls.
  EXPECT_TRUE(sta.timing("u1/Y", st::RiseFall::kFall).valid);
  EXPECT_FALSE(sta.timing("u1/Y", st::RiseFall::kRise).valid);
  EXPECT_TRUE(sta.timing("u2/Y", st::RiseFall::kRise).valid);
  EXPECT_TRUE(sta.timing("y", st::RiseFall::kFall).valid);
  EXPECT_FALSE(sta.timing("y", st::RiseFall::kRise).valid);
}

TEST(Sta, WorstPathPicksLongerBranch) {
  const auto net = nl::parse_verilog(R"(
module two_paths (a, b, y);
  input a, b;
  output y;
  wire n1, n2, n3;
  INVX1 u1 (.A(a), .Y(n1));
  INVX1 u2 (.A(n1), .Y(n2));
  INVX1 u3 (.A(n2), .Y(n3));
  NAND2X1 u4 (.A(n3), .B(b), .Y(y));
endmodule
)");
  st::StaEngine sta(net, lib());
  sta.set_input("a", 0.0, 100e-12);
  sta.set_input("b", 0.0, 100e-12);
  sta.set_output_load("y", 5e-15);
  sta.run();
  const auto path = sta.worst_path();
  ASSERT_GE(path.size(), 4u);
  EXPECT_EQ(path.front().pin, "a");  // deep branch dominates
  EXPECT_EQ(path.back().pin, "y");
  // Arrivals increase monotonically along the path.
  for (size_t i = 1; i < path.size(); ++i) {
    EXPECT_GE(path[i].arrival, path[i - 1].arrival - 1e-15);
  }
}

TEST(Sta, SlackAndRequiredTimes) {
  const auto net = inv_chain3();
  st::StaEngine sta(net, lib());
  sta.set_input("a", 0.0, 100e-12);
  sta.set_output_load("y", 5e-15);
  sta.set_required("y", 1e-9);
  sta.run();
  const auto& yt = sta.timing("y", st::RiseFall::kFall);
  EXPECT_NEAR(sta.worst_slack(), 1e-9 - yt.arrival, 1e-15);
  // Required time propagates upstream along the critical chain.
  const auto& n1 = sta.timing("u1/Y", st::RiseFall::kFall);
  EXPECT_TRUE(std::isfinite(n1.required));
  EXPECT_NEAR(n1.slack(), sta.worst_slack(), 1e-13);
}

TEST(Sta, NetParasiticsDelayAndLoad) {
  const auto net = inv_chain3();
  st::StaEngine base(net, lib());
  base.set_input("a", 0.0, 100e-12);
  base.set_output_load("y", 5e-15);
  base.run();
  const double t_base = base.timing("y", st::RiseFall::kFall).arrival;

  st::StaEngine loaded(net, lib());
  loaded.set_input("a", 0.0, 100e-12);
  loaded.set_output_load("y", 5e-15);
  loaded.set_net_parasitics("n1", 20e-15, 30e-12);
  loaded.run();
  const double t_loaded = loaded.timing("y", st::RiseFall::kFall).arrival;
  // Extra cap slows u1, extra wire delay adds directly: strictly later,
  // by at least the wire delay.
  EXPECT_GT(t_loaded, t_base + 30e-12);
}

TEST(Sta, CombinationalCycleRejected) {
  nl::Netlist net;
  net.add_instance({"u1", "INVX1", {{"A", "n2"}, {"Y", "n1"}}});
  net.add_instance({"u2", "INVX1", {{"A", "n1"}, {"Y", "n2"}}});
  EXPECT_THROW((void)st::StaEngine(net, lib()), wu::Error);
}

TEST(Sta, BadConstraintsThrow) {
  const auto net = inv_chain3();
  st::StaEngine sta(net, lib());
  EXPECT_THROW(sta.set_input("y", 0.0, 1e-10), wu::Error);
  EXPECT_THROW(sta.set_output_load("a", 1e-15), wu::Error);
  EXPECT_THROW(sta.set_input("a", 0.0, -1.0), wu::Error);
  EXPECT_THROW(sta.set_net_parasitics("nope", 0.0, 0.0), wu::Error);
  EXPECT_THROW((void)sta.timing("y", st::RiseFall::kRise), wu::Error);
}

TEST(Sta, UnknownCellRejected) {
  nl::Netlist net;
  net.add_instance({"u1", "MYSTERY9", {{"A", "a"}, {"Y", "y"}}});
  EXPECT_THROW((void)st::StaEngine(net, lib()), wu::Error);
}

TEST(Sta, ReportMentionsPortsAndPath) {
  const auto net = inv_chain3();
  st::StaEngine sta(net, lib());
  sta.set_input("a", 0.0, 100e-12);
  sta.set_output_load("y", 5e-15);
  sta.set_required("y", 1e-9);
  sta.run();
  const auto text = sta.report();
  EXPECT_NE(text.find("y (fall)"), std::string::npos);
  EXPECT_NE(text.find("slack"), std::string::npos);
  EXPECT_NE(text.find("critical path"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Crosstalk flow: the paper's integration story
// ---------------------------------------------------------------------------

namespace {

/// Runs the chain with a noisy annotation on n1 built from the clean
/// ramp at n1 plus a dip of the given depth; returns the y arrival.
double y_arrival_with_noise(double dip_amp,
                            std::unique_ptr<co::EquivalentWaveformMethod> m) {
  const auto net = inv_chain3();
  st::StaEngine clean(net, lib());
  clean.set_input("a", 0.0, 100e-12);
  clean.set_output_load("y", 5e-15);
  clean.run();
  const auto& n1 = clean.timing("u2/A", st::RiseFall::kFall);

  // Falling victim waveform at n1: clean ramp + upward bump centred on
  // the 50% crossing (the noise pushes the falling signal back up in
  // mid-transition, as an opposite-switching aggressor would), which
  // delays the latest 50% crossing.
  const double vdd = lib().nom_voltage;
  const auto ramp = wv::Ramp::from_arrival_slew(n1.arrival, n1.slew, vdd);
  auto falling = ramp.denormalized(wv::Polarity::kFalling, 512);
  std::vector<double> t(falling.times().begin(), falling.times().end());
  std::vector<double> v(falling.values().begin(), falling.values().end());
  const double center = n1.arrival;
  for (size_t i = 0; i < t.size(); ++i) {
    v[i] += dip_amp *
            std::exp(-std::pow((t[i] - center) / (0.5 * n1.slew), 2.0));
  }

  st::StaEngine noisy(net, lib());
  noisy.set_input("a", 0.0, 100e-12);
  noisy.set_output_load("y", 5e-15);
  if (m) noisy.set_noise_method(std::move(m));
  noisy.annotate_noisy_net("n1", wv::Waveform(std::move(t), std::move(v)),
                           wv::Polarity::kFalling);
  noisy.run();
  return noisy.timing("y", st::RiseFall::kFall).arrival;
}

}  // namespace

TEST(StaNoise, ZeroNoiseMatchesCleanRun) {
  const auto net = inv_chain3();
  st::StaEngine clean(net, lib());
  clean.set_input("a", 0.0, 100e-12);
  clean.set_output_load("y", 5e-15);
  clean.run();
  const double t_clean = clean.timing("y", st::RiseFall::kFall).arrival;
  const double t_annotated = y_arrival_with_noise(0.0, nullptr);
  EXPECT_NEAR(t_annotated, t_clean, 3e-12);  // Γeff of a clean ramp ≈ ramp
}

TEST(StaNoise, CrosstalkBumpDelaysArrival) {
  const double t_clean = y_arrival_with_noise(0.0, nullptr);
  const double t_noisy = y_arrival_with_noise(0.55, nullptr);  // deep bump
  EXPECT_GT(t_noisy, t_clean + 5e-12);
}

TEST(StaNoise, MethodIsPluggable) {
  // Deep bump that re-crosses the mid level: P1 pins the arrival at the
  // latest 50% crossing while SGDP weighs the shape — the two estimates
  // must differ measurably.
  const double t_sgdp = y_arrival_with_noise(0.85, nullptr);  // default SGDP
  const double t_p1 =
      y_arrival_with_noise(0.85, std::make_unique<co::P1Method>());
  EXPECT_GT(std::fabs(t_p1 - t_sgdp), 0.5e-12);
}

TEST(StaNoise, OppositePolarityTransitionUnaffected) {
  // Annotation is for the falling victim; the rising transition through
  // the same net must stay identical to the clean run.
  const auto net = inv_chain3();
  st::StaEngine clean(net, lib());
  clean.set_input("a", 0.0, 100e-12);
  clean.set_output_load("y", 5e-15);
  clean.run();
  st::StaEngine noisy(net, lib());
  noisy.set_input("a", 0.0, 100e-12);
  noisy.set_output_load("y", 5e-15);
  const auto& n1 = clean.timing("u2/A", st::RiseFall::kFall);
  const auto ramp =
      wv::Ramp::from_arrival_slew(n1.arrival, n1.slew, lib().nom_voltage);
  noisy.annotate_noisy_net("n1", ramp.denormalized(wv::Polarity::kFalling),
                           wv::Polarity::kFalling);
  noisy.run();
  // Fall uses the annotation; rise would have used the plain ramp — and
  // since the input was constrained on both transitions, u2/A rise is
  // driven by the input fall and must match the clean run exactly.
  EXPECT_NEAR(noisy.timing("u2/A", st::RiseFall::kRise).arrival,
              clean.timing("u2/A", st::RiseFall::kRise).arrival, 1e-15);
}
