// Netlist model and structural-Verilog parser tests.

#include <gtest/gtest.h>

#include "netlist/netlist.hpp"
#include "netlist/verilog.hpp"
#include "util/error.hpp"

namespace nl = waveletic::netlist;
namespace wu = waveletic::util;

TEST(Netlist, PortsNetsInstances) {
  nl::Netlist net;
  net.add_port("a", nl::PortDirection::kInput);
  net.add_port("y", nl::PortDirection::kOutput);
  net.add_instance({"u1", "INVX1", {{"A", "a"}, {"Y", "y"}}});
  EXPECT_TRUE(net.has_net("a"));
  EXPECT_TRUE(net.has_net("y"));
  ASSERT_NE(net.find_port("a"), nullptr);
  EXPECT_EQ(net.find_port("a")->direction, nl::PortDirection::kInput);
  ASSERT_NE(net.find_instance("u1"), nullptr);
  EXPECT_EQ(net.find_instance("u1")->cell, "INVX1");
  EXPECT_NO_THROW(net.validate());
}

TEST(Netlist, InstanceCreatesNets) {
  nl::Netlist net;
  net.add_instance({"u1", "INVX1", {{"A", "n_in"}, {"Y", "n_out"}}});
  EXPECT_TRUE(net.has_net("n_in"));
  EXPECT_TRUE(net.has_net("n_out"));
}

TEST(Netlist, DuplicatesRejected) {
  nl::Netlist net;
  net.add_port("a", nl::PortDirection::kInput);
  EXPECT_THROW(net.add_port("a", nl::PortDirection::kOutput), wu::Error);
  net.add_instance({"u1", "INVX1", {{"A", "a"}, {"Y", "y"}}});
  EXPECT_THROW(net.add_instance({"u1", "INVX1", {{"A", "a"}, {"Y", "z"}}}),
               wu::Error);
}

TEST(Netlist, PinsOnNet) {
  nl::Netlist net;
  net.add_instance({"u1", "INVX1", {{"A", "a"}, {"Y", "n1"}}});
  net.add_instance({"u2", "INVX1", {{"A", "n1"}, {"Y", "y"}}});
  net.add_instance({"u3", "INVX1", {{"A", "n1"}, {"Y", "z"}}});
  const auto refs = net.pins_on_net("n1");
  EXPECT_EQ(refs.size(), 3u);  // u1/Y, u2/A, u3/A
}

TEST(Verilog, ParsesRepresentativeModule) {
  const auto net = nl::parse_verilog(R"(
// a small mapped block
module top (a, b, y);
  input a, b;
  output y;
  wire n1; /* internal */
  INVX1 u1 (.A(a), .Y(n1));
  NAND2X1 u2 (.A(n1), .B(b), .Y(y));
endmodule
)");
  EXPECT_EQ(net.name, "top");
  EXPECT_EQ(net.ports().size(), 3u);
  EXPECT_EQ(net.instances().size(), 2u);
  ASSERT_NE(net.find_instance("u2"), nullptr);
  EXPECT_EQ(net.find_instance("u2")->pins.at("B"), "b");
  EXPECT_TRUE(net.has_net("n1"));
}

TEST(Verilog, MultiNameDeclarations) {
  const auto net = nl::parse_verilog(
      "module m (p, q, r);\n input p, q;\n output r;\n wire w1, w2;\n"
      " INVX1 u1 (.A(p), .Y(w1));\n INVX1 u2 (.A(w1), .Y(r));\n"
      "endmodule\n");
  EXPECT_TRUE(net.has_net("w2"));
  EXPECT_EQ(net.ports().size(), 3u);
}

TEST(Verilog, RejectsPositionalConnections) {
  EXPECT_THROW((void)nl::parse_verilog("module m (a);\n input a;\n"
                                       " INVX1 u1 (a, y);\nendmodule\n"),
               wu::Error);
}

TEST(Verilog, RejectsUnsupportedConstructs) {
  EXPECT_THROW((void)nl::parse_verilog("module m (a);\n input a;\n"
                                       " assign b = a;\nendmodule\n"),
               wu::Error);
  EXPECT_THROW((void)nl::parse_verilog("module m (a);\n input a;\n"),
               wu::Error);  // missing endmodule
  EXPECT_THROW((void)nl::parse_verilog("module m (a);\n"
                                       " INVX1 u (.A(a), .A(a));\n"
                                       "endmodule\n"),
               wu::Error);  // duplicate pin, and port a undeclared
}

TEST(Verilog, PortMissingDirectionThrows) {
  EXPECT_THROW((void)nl::parse_verilog("module m (a, b);\n input a;\n"
                                       "endmodule\n"),
               wu::Error);
}
