// Lane layer bitwise property suite: every Lane<W> kernel against the
// W=1 scalar oracle on randomized waveforms (unaligned tails, exact
// grid hits, clamp edges, crossing touches), the lane-block sweep
// against the scalar sweep bitwise at 1/2/4 threads on random
// netlists (same-plan groups, union-merged near-miss groups, multiple
// corners), the direct evaluate_points_delta_lanes A/B, and the
// knob/override error paths.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>
#include <vector>

#include "netlist/generators.hpp"
#include "sta/batch.hpp"
#include "sta/engine.hpp"
#include "sta/sweep.hpp"
#include "sta_test_util.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "wave/kernels.hpp"
#include "wave/lanes.hpp"
#include "wave/waveform.hpp"

namespace st = waveletic::sta;
namespace tu = waveletic::statest;
namespace wu = waveletic::util;
namespace wv = waveletic::wave;

namespace {

bool avx2() { return wv::lane_width_available(4); }

::testing::AssertionResult BitEq(double a, double b) {
  if (std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure() << a << " != " << b << " (bitwise)";
}

wv::Waveform random_waveform(std::mt19937_64& rng, size_t n) {
  std::uniform_real_distribution<double> step(1e-13, 5e-12);
  std::uniform_real_distribution<double> volt(-0.3, 1.5);
  std::vector<double> t(n), v(n);
  double acc = -1e-9;
  for (size_t i = 0; i < n; ++i) {
    acc += step(rng);
    t[i] = acc;
    v[i] = volt(rng);
  }
  return wv::Waveform(std::move(t), std::move(v));
}

/// Non-decreasing query grid spanning past both record ends (clamp
/// regions) with exact sample hits planted (the tie-break corners).
std::vector<double> random_sorted_grid(std::mt19937_64& rng,
                                       const wv::Waveform& w, size_t m) {
  const double span = w.t_end() - w.t_begin();
  std::uniform_real_distribution<double> u(w.t_begin() - 0.3 * span,
                                           w.t_end() + 0.3 * span);
  std::vector<double> ts(m);
  for (auto& x : ts) x = u(rng);
  if (m >= 4) {
    ts[0] = w.t_begin();
    ts[1] = w.t_end();
    ts[2] = w.time(w.size() / 2);
    ts[3] = w.time((w.size() * 3) / 4);
  }
  std::sort(ts.begin(), ts.end());
  return ts;
}

}  // namespace

// ---------------------------------------------------------------------------
// Kernel-level W=4 vs W=1 bitwise identity (forced-width A/B)
// ---------------------------------------------------------------------------

TEST(Lanes, DispatchReportsConsistentWidths) {
  EXPECT_TRUE(wv::lane_width_available(1));
  EXPECT_TRUE(wv::active_lane_width() == 1 || wv::active_lane_width() == 4);
  if (wv::compiled_lane_width() == 1) EXPECT_FALSE(avx2());
  {
    wv::LaneWidthGuard g(1);
    EXPECT_EQ(wv::active_lane_width(), 1);
  }
  if (avx2()) {
    wv::LaneWidthGuard g(4);
    EXPECT_EQ(wv::active_lane_width(), 4);
  }
  EXPECT_THROW(wv::force_lane_width(3), wu::Error);
  EXPECT_THROW(wv::force_lane_width(-1), wu::Error);
  if (!avx2()) EXPECT_THROW(wv::force_lane_width(4), wu::Error);
}

TEST(Lanes, SampleIntoW4MatchesW1Bitwise) {
  if (!avx2()) GTEST_SKIP() << "AVX2 unavailable";
  std::mt19937_64 rng(101);
  for (int round = 0; round < 60; ++round) {
    // Lengths off the vector width on purpose: unaligned tails.
    const size_t n = 1 + static_cast<size_t>(rng() % 97);
    const size_t m = 1 + static_cast<size_t>(rng() % 131);
    const auto w = random_waveform(rng, n);
    const auto ts = random_sorted_grid(rng, w, m);
    std::vector<double> scalar(m), lanes(m);
    {
      wv::LaneWidthGuard g(1);
      wv::sample_into(w, ts, scalar);
    }
    {
      wv::LaneWidthGuard g(4);
      wv::sample_into(w, ts, lanes);
    }
    for (size_t k = 0; k < m; ++k) {
      ASSERT_TRUE(BitEq(scalar[k], lanes[k]))
          << "round " << round << " query " << k;
    }
  }
}

TEST(Lanes, ResampleIntoW4MatchesW1Bitwise) {
  if (!avx2()) GTEST_SKIP() << "AVX2 unavailable";
  std::mt19937_64 rng(103);
  for (int round = 0; round < 30; ++round) {
    const auto w = random_waveform(rng, 2 + rng() % 120);
    const size_t m = 2 + rng() % 90;
    const double span = w.t_end() - w.t_begin();
    const double t0 = w.t_begin() - 0.15 * span;
    const double t1 = w.t_end() + 0.2 * span;
    std::vector<double> t1v(m), v1v(m), t4v(m), v4v(m);
    {
      wv::LaneWidthGuard g(1);
      wv::resample_into(w, t0, t1, t1v, v1v);
    }
    {
      wv::LaneWidthGuard g(4);
      wv::resample_into(w, t0, t1, t4v, v4v);
    }
    for (size_t k = 0; k < m; ++k) {
      ASSERT_TRUE(BitEq(t1v[k], t4v[k])) << "time " << k;
      ASSERT_TRUE(BitEq(v1v[k], v4v[k])) << "value " << k;
    }
  }
}

TEST(Lanes, FlipAndCombineW4MatchW1Bitwise) {
  if (!avx2()) GTEST_SKIP() << "AVX2 unavailable";
  std::mt19937_64 rng(107);
  for (int round = 0; round < 30; ++round) {
    const auto a = random_waveform(rng, 1 + rng() % 77);
    const auto b = random_waveform(rng, 1 + rng() % 77);
    std::vector<double> f1(a.size()), f4(a.size());
    {
      wv::LaneWidthGuard g(1);
      wv::flip_into(a, 1.2, f1);
    }
    {
      wv::LaneWidthGuard g(4);
      wv::flip_into(a, 1.2, f4);
    }
    for (size_t k = 0; k < a.size(); ++k) {
      ASSERT_TRUE(BitEq(f1[k], f4[k])) << "flip " << k;
    }
    wv::Workspace ws1, ws4;
    std::vector<double> c1, c4;
    {
      wv::LaneWidthGuard g(1);
      const auto scope = ws1.scope();
      const auto r = wv::combine_into(a, 0.7, b, -1.3, ws1);
      c1.assign(r.value.begin(), r.value.end());
    }
    {
      wv::LaneWidthGuard g(4);
      const auto scope = ws4.scope();
      const auto r = wv::combine_into(a, 0.7, b, -1.3, ws4);
      c4.assign(r.value.begin(), r.value.end());
    }
    ASSERT_EQ(c1.size(), c4.size());
    for (size_t k = 0; k < c1.size(); ++k) {
      ASSERT_TRUE(BitEq(c1[k], c4[k])) << "combine " << k;
    }
  }
}

TEST(Lanes, CrossingScansW4MatchW1Bitwise) {
  if (!avx2()) GTEST_SKIP() << "AVX2 unavailable";
  std::mt19937_64 rng(109);
  for (int round = 0; round < 60; ++round) {
    const auto w = random_waveform(rng, 1 + rng() % 90);
    // Levels include exact sample values — the touch/dedup corners the
    // vector fast-skip must not disturb.
    std::vector<double> levels = {0.5, -0.31, 1.5, w.value(0),
                                  w.value(w.size() / 2),
                                  w.value(w.size() - 1)};
    for (const double level : levels) {
      std::optional<double> fc1, fc4, lc1, lc4;
      size_t n1 = 0, n4 = 0;
      std::vector<double> all1, all4;
      wv::Workspace ws;
      {
        wv::LaneWidthGuard g(1);
        fc1 = wv::first_crossing(w, level);
        lc1 = wv::last_crossing(w, level);
        n1 = wv::crossing_count(w, level);
        const auto scope = ws.scope();
        const auto s = wv::crossings_into(w, level, ws);
        all1.assign(s.begin(), s.end());
      }
      {
        wv::LaneWidthGuard g(4);
        fc4 = wv::first_crossing(w, level);
        lc4 = wv::last_crossing(w, level);
        n4 = wv::crossing_count(w, level);
        const auto scope = ws.scope();
        const auto s = wv::crossings_into(w, level, ws);
        all4.assign(s.begin(), s.end());
      }
      ASSERT_EQ(fc1.has_value(), fc4.has_value()) << "level " << level;
      if (fc1) ASSERT_TRUE(BitEq(*fc1, *fc4));
      ASSERT_EQ(lc1.has_value(), lc4.has_value());
      if (lc1) ASSERT_TRUE(BitEq(*lc1, *lc4));
      ASSERT_EQ(n1, n4);
      ASSERT_EQ(all1.size(), all4.size());
      for (size_t k = 0; k < all1.size(); ++k) {
        ASSERT_TRUE(BitEq(all1[k], all4[k])) << "crossing " << k;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Lane-block sweep vs scalar sweep, bitwise, across thread counts
// ---------------------------------------------------------------------------

namespace {

/// Scenario mix that exercises every grouping shape: 8 variants on the
/// SAME nets (identical plan content, distinct objects → same-plan
/// buckets) plus near-miss singles (distinct cones → union merging).
std::vector<st::NoiseScenario> grouping_scenarios(
    const tu::EngineFixture& f) {
  auto scenarios = tu::random_scenarios(f, 12);
  for (size_t i = 0; i < scenarios.size(); ++i) {
    scenarios[i].name = "s" + std::to_string(i);
  }
  return scenarios;
}

void expect_sweeps_bitwise_equal(st::SweepResult& a, st::SweepResult& b,
                                 const st::StaEngine& sta) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t p = 0; p < a.size(); ++p) {
    EXPECT_TRUE(tu::states_bitwise_equal(a.state(p), b.state(p), &sta))
        << "point " << p;
    EXPECT_TRUE(BitEq(a.worst_slack(p), b.worst_slack(p))) << "point " << p;
  }
}

}  // namespace

TEST(Lanes, SweepLaneBlocksMatchScalarSweepBitwise) {
  for (const uint64_t seed : {3u, 17u}) {
    auto f = tu::random_engine(seed);
    st::Corner slow;
    slow.name = "slow";
    slow.cell_delay_scale = 1.08;
    slow.cell_slew_scale = 1.05;
    slow.wire_delay_scale = 1.15;

    st::SweepSpec scalar_spec;
    scalar_spec.scenarios = grouping_scenarios(f);
    scalar_spec.corners = {st::Corner{}, slow};
    scalar_spec.threads = 1;
    scalar_spec.lanes = 1;  // the scalar per-point oracle
    auto ref = f.sta->sweep(scalar_spec);

    for (const int threads : {1, 2, 4}) {
      for (const int lanes : {0, 1, 4}) {
        if (lanes == 4 && !avx2()) continue;
        st::SweepSpec spec = scalar_spec;
        spec.threads = threads;
        spec.lanes = lanes;
        auto got = f.sta->sweep(spec);
        SCOPED_TRACE("seed=" + std::to_string(seed) + " threads=" +
                     std::to_string(threads) + " lanes=" +
                     std::to_string(lanes));
        expect_sweeps_bitwise_equal(ref, got, *f.sta);
      }
    }
  }
}

TEST(Lanes, EndpointOnlyLaneSweepMatchesScalar) {
  auto f = tu::random_engine(23);
  st::SweepSpec spec;
  spec.scenarios = grouping_scenarios(f);
  spec.threads = 2;
  spec.endpoint_only = true;
  spec.lanes = 1;
  auto ref = f.sta->sweep(spec);
  spec.lanes = avx2() ? 4 : 0;
  auto got = f.sta->sweep(spec);
  ASSERT_EQ(ref.size(), got.size());
  for (size_t p = 0; p < ref.size(); ++p) {
    EXPECT_TRUE(BitEq(ref.worst_slack(p), got.worst_slack(p)))
        << "point " << p;
  }
  EXPECT_EQ(ref.worst_point().point, got.worst_point().point);
  EXPECT_TRUE(BitEq(ref.worst_point().slack, got.worst_point().slack));
}

TEST(Lanes, PrunedLaneSweepStaysExact) {
  auto f = tu::random_engine(29);
  st::SweepSpec spec;
  spec.scenarios = grouping_scenarios(f);
  spec.threads = 2;
  spec.endpoint_only = true;
  spec.prune = st::PruneMode::kSafe;
  spec.lanes = 1;
  auto ref = f.sta->sweep(spec);
  spec.lanes = avx2() ? 4 : 0;
  auto got = f.sta->sweep(spec);
  EXPECT_EQ(ref.worst_point().point, got.worst_point().point);
  EXPECT_TRUE(BitEq(ref.worst_point().slack, got.worst_point().slack));
}

// ---------------------------------------------------------------------------
// Direct evaluate_points_delta_lanes A/B (covers the W=1 walker on
// every build, the W=4 walker on AVX2)
// ---------------------------------------------------------------------------

TEST(Lanes, EvaluatePointsDeltaLanesMatchesScalarDirect) {
  auto f = tu::random_engine(41);
  auto& sta = *f.sta;
  sta.prepare();
  const auto scenarios = grouping_scenarios(f);

  // One baseline under the engine-level (empty) annotation table.
  const auto base_table = sta.compile_edge_annotations(nullptr);
  std::vector<st::TimingState> baseline(1);
  {
    std::vector<st::StaEngine::EvalContext> bctx(1);
    bctx[0].edge_noise = base_table.data();
    bctx[0].method = &sta.noise_method();
    sta.evaluate_points(baseline, bctx);
  }

  std::vector<std::vector<const st::NoiseAnnotation*>> tables;
  std::vector<st::StaEngine::DeltaPlan> plans;
  tables.reserve(scenarios.size());
  plans.reserve(scenarios.size());
  for (const auto& sc : scenarios) {
    tables.push_back(sta.compile_edge_annotations(&sc));
    plans.push_back(sta.delta_plan(sc));
  }
  const size_t n = scenarios.size();
  std::vector<st::StaEngine::EvalContext> contexts(n);
  std::vector<const st::TimingState*> baselines(n, &baseline[0]);
  std::vector<const st::StaEngine::DeltaPlan*> plan_ptrs(n);
  for (size_t p = 0; p < n; ++p) {
    contexts[p].edge_noise = tables[p].data();
    contexts[p].method = &sta.noise_method();
    plan_ptrs[p] = &plans[p];
  }

  std::vector<st::TimingState> ref(n), got(n);
  sta.evaluate_points_delta(ref, contexts, baselines, plan_ptrs);
  // W=1 block walker (every build): singleton blocks through the SoA
  // path, bitwise identical to the scalar fold by construction.
  sta.evaluate_points_delta_lanes(got, contexts, baselines, plan_ptrs, 1);
  for (size_t p = 0; p < n; ++p) {
    EXPECT_TRUE(tu::states_bitwise_equal(ref[p], got[p], &sta))
        << "W=1 point " << p;
  }
  if (avx2()) {
    std::vector<st::TimingState> wide(n);
    for (const int threads : {0, 2}) {
      std::unique_ptr<wu::ThreadPool> pool;
      std::vector<wv::Workspace> wss;
      if (threads > 0) {
        pool = std::make_unique<wu::ThreadPool>(threads);
        wss.resize(static_cast<size_t>(threads));
      }
      sta.evaluate_points_delta_lanes(
          wide, contexts, baselines, plan_ptrs, 4, pool.get(),
          std::span<wv::Workspace>(wss.data(), wss.size()));
      for (size_t p = 0; p < n; ++p) {
        EXPECT_TRUE(tu::states_bitwise_equal(ref[p], wide[p], &sta))
            << "W=4 threads=" << threads << " point " << p;
      }
    }
  }
}

TEST(Lanes, GroupingIsContentBasedAndBounded) {
  auto f = tu::random_engine(43);
  auto& sta = *f.sta;
  sta.prepare();
  const auto scenarios = grouping_scenarios(f);
  const auto base_table = sta.compile_edge_annotations(nullptr);
  std::vector<st::TimingState> baseline(1);
  {
    std::vector<st::StaEngine::EvalContext> bctx(1);
    bctx[0].edge_noise = base_table.data();
    bctx[0].method = &sta.noise_method();
    sta.evaluate_points(baseline, bctx);
  }
  std::vector<st::StaEngine::DeltaPlan> plans;
  for (const auto& sc : scenarios) plans.push_back(sta.delta_plan(sc));
  const size_t n = scenarios.size();
  std::vector<st::StaEngine::EvalContext> contexts(n);
  std::vector<const st::TimingState*> baselines(n, &baseline[0]);
  std::vector<const st::StaEngine::DeltaPlan*> plan_ptrs(n);
  for (size_t p = 0; p < n; ++p) plan_ptrs[p] = &plans[p];

  const auto blocks = sta.group_lane_blocks(contexts, baselines, plan_ptrs, 4);
  size_t covered = 0;
  std::vector<int> seen(n, 0);
  for (const auto& b : blocks) {
    ASSERT_GE(b.points.size(), 1u);
    ASSERT_LE(b.points.size(), 4u);
    ASSERT_NE(b.plan, nullptr);
    for (const uint32_t p : b.points) {
      ASSERT_LT(p, n);
      ++seen[p];
      ++covered;
      // Every lane's own cone must be inside the block's plan (union
      // plans are cone-supersets).
      for (const int v : plans[p].forward) {
        EXPECT_TRUE(std::find(b.plan->forward.begin(), b.plan->forward.end(),
                              v) != b.plan->forward.end());
      }
    }
  }
  EXPECT_EQ(covered, n);  // exact partition of the point set
  for (size_t p = 0; p < n; ++p) EXPECT_EQ(seen[p], 1);
  // random_scenarios lays variants over the same nets repeatedly, so
  // with 12 scenarios there must be at least one multi-lane block.
  bool any_multi = false;
  for (const auto& b : blocks) any_multi |= b.points.size() > 1;
  EXPECT_TRUE(any_multi);
}

// ---------------------------------------------------------------------------
// Knob validation + forwarding
// ---------------------------------------------------------------------------

TEST(Lanes, SweepRejectsBadLaneWidths) {
  auto f = tu::random_engine(47);
  st::SweepSpec spec;
  spec.lanes = 2;
  EXPECT_THROW((void)f.sta->sweep(spec), wu::Error);
  spec.lanes = -4;
  EXPECT_THROW((void)f.sta->sweep(spec), wu::Error);
  if (!avx2()) {
    spec.lanes = 4;
    EXPECT_THROW((void)f.sta->sweep(spec), wu::Error);
  }
}

TEST(Lanes, BatchForwardsLanesKnob) {
  auto f = tu::random_engine(53);
  const auto scenarios = grouping_scenarios(f);
  st::BatchOptions scalar_opt;
  scalar_opt.threads = 1;
  scalar_opt.lanes = 1;
  st::ScenarioBatch scalar_batch(*f.sta, scalar_opt);
  st::BatchOptions lane_opt;
  lane_opt.threads = 2;
  lane_opt.lanes = 0;  // auto: AVX2 → 4, else scalar
  st::ScenarioBatch lane_batch(*f.sta, lane_opt);
  for (const auto& sc : scenarios) {
    scalar_batch.add(sc);
    lane_batch.add(sc);
  }
  scalar_batch.run();
  lane_batch.run();
  for (size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_TRUE(BitEq(scalar_batch.worst_slack(i), lane_batch.worst_slack(i)))
        << "scenario " << i;
  }
}
