/// \file test_sta_scengen.cpp
/// The streaming scenario generator: cross-product cardinality and
/// lexicographic determinism of the lazy iterator, window-filter
/// correctness against hand-computed overlaps, correlation-predicate
/// rejection (pluggable + built-in structural rule), bitwise identity
/// of the generated sweep against eager enumeration through sweep(),
/// prune-seed exactness, and the million-point bounded-memory funnel.

#include <bit>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "interconnect/coupled.hpp"
#include "sta/scengen.hpp"
#include "sta_test_util.hpp"

namespace waveletic {
namespace {

using sta::GeneratedSweepSpec;
using sta::PruneMode;
using sta::ScenarioGenerator;
using sta::ScenarioPair;
using sta::ScenarioSpace;
using sta::StructuralCorrelationRule;
using statest::vcl013;

uint64_t bits(double x) { return std::bit_cast<uint64_t>(x); }

/// A hand-built 2×3×4 space whose every candidate is window-feasible
/// (alignments stay well inside both windows).
ScenarioSpace tiny_space() {
  ScenarioSpace space;
  for (int p = 0; p < 2; ++p) {
    ScenarioPair pair;
    pair.victim_net = p;
    pair.aggressor_net = p + 2;
    pair.victim_name = "v" + std::to_string(p);
    pair.aggressor_name = "g" + std::to_string(p);
    pair.victim_arrival = 1e-9;
    pair.victim_slew = 100e-12;
    pair.aggressor_window_lo = 0.0;
    pair.aggressor_window_hi = 2e-9;
    space.pairs.push_back(pair);
  }
  space.alignments = {-20e-12, 0.0, 20e-12};
  space.strengths = {0.1, 0.2, 0.3, 0.4};
  return space;
}

TEST(ScenGen, CrossProductCardinalityAndLexicographicOrder) {
  const ScenarioSpace space = tiny_space();
  ASSERT_EQ(space.size(), 2u * 3u * 4u);

  ScenarioGenerator gen(space);
  std::vector<uint64_t> seen;
  while (const auto c = gen.next()) {
    // Flat index and decoded coordinates agree both ways.
    EXPECT_EQ(c->index, seen.empty() ? 0 : seen.back() + 1);
    const auto coords = space.decode(c->index);
    EXPECT_EQ(coords.pair, c->pair);
    EXPECT_EQ(coords.alignment, c->alignment);
    EXPECT_EQ(coords.strength, c->strength);
    EXPECT_EQ(space.encode(coords), c->index);
    seen.push_back(c->index);
  }
  // Every candidate, exactly once, in lexicographic order 0..N-1.
  ASSERT_EQ(seen.size(), space.size());
  EXPECT_EQ(gen.stats().generated, space.size());
  EXPECT_EQ(gen.stats().window_killed, 0u);
  EXPECT_EQ(gen.stats().correlation_killed, 0u);

  // A second generator over the same space replays the identical
  // sequence (pull order is deterministic).
  ScenarioGenerator replay(space);
  for (const uint64_t expected : seen) {
    const auto c = replay.next();
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->index, expected);
  }
  EXPECT_FALSE(replay.next().has_value());
}

TEST(ScenGen, WindowFilterMatchesHandComputedOverlaps) {
  // One pair with round-number windows:
  //   victim: arrival 1.0 ns, slew 100 ps -> transition window
  //           [0.9, 1.1] ns; bump sigma 50 ps -> support ±150 ps.
  //   aggressor switching window: [0.5, 0.95] ns.
  ScenarioSpace space;
  ScenarioPair pair;
  pair.victim_net = 0;
  pair.aggressor_net = 1;
  pair.victim_name = "v";
  pair.aggressor_name = "g";
  pair.victim_arrival = 1.0e-9;
  pair.victim_slew = 100e-12;
  pair.aggressor_window_lo = 0.5e-9;
  pair.aggressor_window_hi = 0.95e-9;
  space.pairs.push_back(pair);
  space.strengths = {0.2, 0.4};
  // Hand-computed per alignment (bump support vs the two windows):
  //   +0 ps   : support [0.85, 1.15] — overlaps both        -> feasible
  //   +300 ps : support [1.15, 1.45] — misses victim hi 1.1 -> killed
  //   -270 ps : support [0.58, 0.88] — misses victim lo 0.9 -> killed
  //   -200 ps : support [0.65, 0.95] — touches both         -> feasible
  //   +90 ps  : support [0.94, 1.24] — touches aggressor hi -> feasible
  //   +160 ps : support [1.01, 1.31] — victim ok, but past
  //             aggressor hi 0.95                           -> killed
  space.alignments = {0.0, 300e-12, -270e-12, -200e-12, 90e-12, 160e-12};
  const bool expected[] = {true, false, false, true, true, false};

  ScenarioGenerator gen(space);
  for (uint32_t a = 0; a < space.alignments.size(); ++a) {
    EXPECT_EQ(gen.window_feasible(0, a), expected[a])
        << "alignment " << space.alignments[a];
  }
  // Drained candidates are exactly the feasible alignments × all
  // strengths, and the kill counter advanced by whole strength blocks.
  std::vector<uint64_t> indices;
  while (const auto c = gen.next()) indices.push_back(c->index);
  EXPECT_EQ(indices, (std::vector<uint64_t>{0, 1, 6, 7, 8, 9}));
  EXPECT_EQ(gen.stats().generated, space.size());
  EXPECT_EQ(gen.stats().window_killed, 3u * space.strengths.size());
  EXPECT_EQ(gen.stats().correlation_killed, 0u);
}

/// A rule that rejects everything — the pluggable-predicate contract.
class RejectAllRule final : public sta::CorrelationRule {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "reject-all";
  }
  [[nodiscard]] bool can_switch_together(int32_t, int32_t) const override {
    return false;
  }
};

TEST(ScenGen, CorrelationPredicateKillsPairs) {
  const ScenarioSpace space = tiny_space();
  const RejectAllRule reject;
  ScenarioGenerator gen(space, &reject);
  EXPECT_FALSE(gen.next().has_value());
  // Window passes first (stage order), so every candidate dies in the
  // correlation stage.
  EXPECT_EQ(gen.stats().generated, space.size());
  EXPECT_EQ(gen.stats().window_killed, 0u);
  EXPECT_EQ(gen.stats().correlation_killed, space.size());
}

TEST(ScenGen, StructuralRuleRejectsCausallyOrderedAndSameNet) {
  const auto nl = netlist::make_chain_tree(2);
  const auto drives = sta::make_drives_predicate(vcl013());
  const StructuralCorrelationRule rule(nl, drives);
  const auto net = [&](const char* name) { return nl.net_ordinal(name); };

  // Independent chains: feasible both ways.
  EXPECT_TRUE(rule.can_switch_together(net("c0_1"), net("c1_1")));
  EXPECT_TRUE(rule.can_switch_together(net("c1_2"), net("c0_2")));
  // A net cannot aggress itself.
  EXPECT_FALSE(rule.can_switch_together(net("c0_1"), net("c0_1")));
  // Causal ordering, both directions: c0_2 is in c0_1's fanout cone.
  EXPECT_FALSE(rule.can_switch_together(net("c0_1"), net("c0_2")));
  EXPECT_FALSE(rule.can_switch_together(net("c0_2"), net("c0_1")));
  // The folded output is downstream of everything.
  EXPECT_FALSE(rule.can_switch_together(net("y"), net("c1_1")));
}

TEST(ScenGen, StructuralRuleRejectsSameDriverOutputs) {
  // A hand-built two-output cell: n1 and n2 are complementary outputs
  // of one instance, so they cannot be independent aggressors of each
  // other.  The rule only needs netlist + drives, no library.
  netlist::Netlist nl;
  netlist::Instance dual;
  dual.name = "u0";
  dual.cell = "DUALOUT";
  dual.pins = {{"A", "n0"}, {"Y1", "n1"}, {"Y2", "n2"}};
  nl.add_instance(dual);
  const auto drives = [](const netlist::Instance&, const std::string& pin) {
    return pin[0] == 'Y';
  };
  const StructuralCorrelationRule rule(nl, drives);
  const auto net = [&](const char* name) { return nl.net_ordinal(name); };
  EXPECT_EQ(nl.driver_of(net("n1"), drives), nl.driver_of(net("n2"), drives));
  EXPECT_NE(nl.driver_of(net("n1"), drives), nullptr);
  EXPECT_EQ(nl.driver_of(net("n0"), drives), nullptr);  // input net
  EXPECT_FALSE(rule.can_switch_together(net("n1"), net("n2")));
  EXPECT_FALSE(rule.can_switch_together(net("n2"), net("n1")));
  // Input vs output is causal, not same-driver — still rejected.
  EXPECT_FALSE(rule.can_switch_together(net("n0"), net("n1")));
}

TEST(ScenGen, SpaceBuilderExtractsBaselineWindows) {
  auto f = statest::random_engine(17);
  f.sta->run();
  const auto drives = sta::make_drives_predicate(vcl013());
  const auto candidates = interconnect::infer_coupling_candidates(*f.netlist);
  const auto space = sta::make_scenario_space(
      *f.sta, *f.netlist, candidates, drives, {0.0}, {0.25});
  ASSERT_FALSE(space.pairs.empty());
  EXPECT_EQ(space.vdd, vcl013().nom_voltage);
  for (const auto& pair : space.pairs) {
    EXPECT_GT(pair.victim_slew, 0.0);
    EXPECT_LE(pair.aggressor_window_lo, pair.aggressor_window_hi);
    EXPECT_GT(pair.coupling_scale, 0.0);
    // The victim anchor is a real falling sink transition of the net.
    bool matched = false;
    for (const auto& ref : f.netlist->pins_on_net(pair.victim_name)) {
      if (drives(*ref.instance, ref.pin)) continue;
      const auto id = f.sta->find_pin(ref.instance->name + "/" + ref.pin);
      if (!id.valid()) continue;
      const auto& t = f.sta->timing(id, sta::RiseFall::kFall);
      if (t.valid && bits(t.arrival) == bits(pair.victim_arrival) &&
          bits(t.slew) == bits(pair.victim_slew)) {
        matched = true;
      }
    }
    EXPECT_TRUE(matched) << "victim " << pair.victim_name;
  }

  // A victim with no instance sink (the output port net) yields no pair.
  const interconnect::CouplingCandidate bad{
      f.netlist->net_ordinal(f.netlist->ports().back().name),
      f.netlist->net_ordinal(space.pairs.front().victim_name), 100e-15};
  const auto none = sta::make_scenario_space(
      *f.sta, *f.netlist, std::span(&bad, 1), drives, {0.0}, {0.25});
  EXPECT_TRUE(none.pairs.empty());
}

/// Shared scaffolding of the generated-vs-eager comparisons: builds the
/// engine, space and rule, runs the generated sweep, and eagerly
/// enumerates the same surviving candidates through sweep().
struct GeneratedVsEager {
  statest::EngineFixture fixture;
  sta::DrivesPredicate drives;
  std::unique_ptr<StructuralCorrelationRule> rule;
  ScenarioSpace space;

  explicit GeneratedVsEager(uint64_t seed, size_t max_candidates,
                            std::vector<double> alignments,
                            std::vector<double> strengths, int inputs = 6,
                            int layers = 5, int layer_width = 7)
      : fixture(statest::random_engine(seed, inputs, layers, layer_width)),
        drives(sta::make_drives_predicate(vcl013())) {
    fixture.sta->run();
    rule = std::make_unique<StructuralCorrelationRule>(*fixture.netlist,
                                                       drives);
    auto candidates =
        interconnect::infer_coupling_candidates(*fixture.netlist);
    if (candidates.size() > max_candidates) {
      candidates.resize(max_candidates);
    }
    space = sta::make_scenario_space(*fixture.sta, *fixture.netlist,
                                     candidates, drives,
                                     std::move(alignments),
                                     std::move(strengths));
  }

  /// Eagerly enumerates every feasible candidate into one SweepSpec.
  sta::SweepSpec eager_spec(std::vector<sta::Corner> corners,
                            std::vector<uint64_t>* survivors) const {
    sta::SweepSpec spec;
    spec.corners = std::move(corners);
    spec.endpoint_only = true;
    spec.threads = 4;
    ScenarioGenerator gen(space, rule.get());
    while (const auto c = gen.next()) {
      spec.scenarios.push_back(gen.materialize(*c));
      survivors->push_back(c->index);
    }
    return spec;
  }
};

TEST(ScenGen, GeneratedSweepBitwiseEqualsEagerEnumeration) {
  GeneratedVsEager h(11, 60, {-40e-12, -10e-12, 0.0, 25e-12, 60e-12},
                     {0.15, 0.3, 0.45});
  const std::vector<sta::Corner> corners = {
      sta::Corner{}, sta::Corner{"slow", 1.05, 1.02, 1.1}};

  GeneratedSweepSpec gspec;
  gspec.space = h.space;
  gspec.correlation = h.rule.get();
  gspec.corners = corners;
  gspec.threads = 4;
  gspec.gen_chunk = 16;  // several chunks
  gspec.prune = PruneMode::kOff;
  const auto gr = h.fixture.sta->sweep(gspec);

  std::vector<uint64_t> survivors;
  auto espec = h.eager_spec(corners, &survivors);
  ASSERT_FALSE(survivors.empty());
  const auto er = h.fixture.sta->sweep(espec);

  // With pruning off every survivor is evaluated on both paths; each
  // (candidate, corner) slack must agree bitwise.
  ASSERT_EQ(gr.points().size(), er.size());
  EXPECT_EQ(gr.gen_stats().evaluated + gr.gen_stats().reused,
            static_cast<uint64_t>(er.size()));
  for (const auto& rec : gr.points()) {
    const auto it =
        std::lower_bound(survivors.begin(), survivors.end(), rec.candidate);
    ASSERT_TRUE(it != survivors.end() && *it == rec.candidate);
    const auto scenario =
        static_cast<size_t>(std::distance(survivors.begin(), it));
    const size_t p = er.point(rec.corner, scenario);
    EXPECT_EQ(bits(rec.worst_slack), bits(er.worst_slack(p)));
  }
  // And the argmin (value, point AND tie-break) is the eager one.
  const auto ewp = er.worst_point();
  EXPECT_EQ(bits(gr.worst_slack()), bits(ewp.slack));
  EXPECT_EQ(gr.worst_point().candidate, survivors[ewp.scenario]);
  EXPECT_EQ(gr.worst_point().corner, ewp.corner);
  EXPECT_EQ(gr.worst_point().scenario_name, er.scenario_name(ewp.scenario));
}

TEST(ScenGen, GeneratedSweepWithPruningStaysExact) {
  GeneratedVsEager h(23, 80, {-30e-12, 0.0, 15e-12, 45e-12},
                     {0.1, 0.25, 0.4});
  const std::vector<sta::Corner> corners = {sta::Corner{}};

  GeneratedSweepSpec gspec;
  gspec.space = h.space;
  gspec.correlation = h.rule.get();
  gspec.corners = corners;
  gspec.threads = 4;
  gspec.gen_chunk = 24;
  gspec.prune = PruneMode::kSafe;
  const auto gr = h.fixture.sta->sweep(gspec);

  std::vector<uint64_t> survivors;
  auto espec = h.eager_spec(corners, &survivors);
  espec.prune = PruneMode::kSafe;
  ASSERT_FALSE(survivors.empty());
  const auto er = h.fixture.sta->sweep(espec);

  const auto ewp = er.worst_point();
  EXPECT_EQ(bits(gr.worst_slack()), bits(ewp.slack));
  EXPECT_EQ(gr.worst_point().candidate, survivors[ewp.scenario]);
  EXPECT_EQ(gr.worst_point().corner, ewp.corner);

  // Funnel bookkeeping: every generated point is accounted to exactly
  // one stage, and cross-chunk seeding never over-prunes the argmin.
  const auto& g = gr.gen_stats();
  EXPECT_EQ(g.generated, gr.num_corners() * h.space.size());
  EXPECT_EQ(g.generated, g.window_killed + g.correlation_killed +
                             g.prune_killed + g.reused + g.evaluated);
  EXPECT_EQ(g.evaluated + g.reused + g.prune_killed,
            gr.num_corners() * survivors.size());
}

TEST(ScenGen, PruneSeedSlackKeepsWorstPointExact) {
  auto f = statest::random_engine(3);
  const auto scenarios = statest::random_scenarios(f, 24);

  sta::SweepSpec spec;
  spec.scenarios = scenarios;
  spec.endpoint_only = true;
  spec.prune = PruneMode::kSafe;
  spec.threads = 4;
  const auto base = f.sta->sweep(spec);
  const auto base_wp = base.worst_point();

  // Seeding with the attained worst slack may prune more, but the
  // argmin (strict `bound > worst_seen` admission) is untouched.
  sta::SweepSpec seeded = spec;
  seeded.prune_seed_slack = base_wp.slack;
  const auto again = f.sta->sweep(seeded);
  const auto again_wp = again.worst_point();
  EXPECT_EQ(bits(again_wp.slack), bits(base_wp.slack));
  EXPECT_EQ(again_wp.point, base_wp.point);
  EXPECT_GE(again.prune_stats().pruned, base.prune_stats().pruned);
}

TEST(ScenGen, MillionPointFunnelStreamsInBoundedMemory) {
  GeneratedVsEager h(5, 4096, {}, {}, 12, 8, 12);
  // Grids sized to exactly 1,000,000 candidates: 125 pairs × 400
  // alignments × 20 strengths.  The alignment axis spans ±20 ns while
  // victim windows are a few hundred ps wide, so the window filter
  // kills the overwhelming majority before any waveform exists.
  ASSERT_GE(h.space.pairs.size(), 125u);
  h.space.pairs.resize(125);
  for (int a = 0; a < 400; ++a) {
    h.space.alignments.push_back(-20e-9 + 1e-10 * a);
  }
  for (int s = 0; s < 20; ++s) {
    h.space.strengths.push_back(0.05 + 0.02 * s);
  }
  ASSERT_EQ(h.space.size(), 1000000u);

  GeneratedSweepSpec gspec;
  gspec.space = h.space;
  gspec.correlation = h.rule.get();
  gspec.gen_chunk = 2048;
  gspec.prune = PruneMode::kSafe;
  gspec.keep_point_records = false;
  const auto gr = h.fixture.sta->sweep(gspec);

  const auto& g = gr.gen_stats();
  EXPECT_EQ(g.generated, 1000000u);
  EXPECT_EQ(g.generated, g.window_killed + g.correlation_killed +
                             g.prune_killed + g.reused + g.evaluated);
  // Bounded memory: never more than one chunk of scenarios resident.
  EXPECT_LE(g.peak_resident_scenarios, gspec.gen_chunk);
  EXPECT_GE(g.chunks, 1u);
  EXPECT_GT(g.window_killed, g.generated / 2);  // the filter earns its keep
  EXPECT_TRUE(gr.points().empty());             // records disabled

  // Acceptance: the worst point is bitwise the one eager enumeration
  // of the surviving candidates through sweep() finds.
  std::vector<uint64_t> survivors;
  auto espec = h.eager_spec({}, &survivors);
  espec.prune = PruneMode::kSafe;
  ASSERT_FALSE(survivors.empty());
  EXPECT_EQ(gr.num_corners() * survivors.size(),
            g.prune_killed + g.reused + g.evaluated);
  const auto er = h.fixture.sta->sweep(espec);
  const auto ewp = er.worst_point();
  EXPECT_EQ(bits(gr.worst_slack()), bits(ewp.slack));
  EXPECT_EQ(gr.worst_point().candidate, survivors[ewp.scenario]);
  EXPECT_EQ(gr.worst_point().scenario_name, er.scenario_name(ewp.scenario));
}

TEST(ScenGen, CoupledBumpCachePersistsAcrossSweepsBitwiseIdentical) {
  GeneratedVsEager h(37, 40, {-20e-12, 0.0, 30e-12}, {0.2, 0.35});
  h.space.bump_shape = sta::BumpShape::kCoupledLine;

  GeneratedSweepSpec gspec;
  gspec.space = h.space;
  gspec.correlation = h.rule.get();
  gspec.threads = 2;
  gspec.gen_chunk = 16;

  // First sweep on a fresh external cache: every synthesized bump shape
  // is a miss; within-sweep reuse may already produce hits.
  sta::CoupledBumpCache cache;
  gspec.bump_cache = &cache;
  const auto r1 = h.fixture.sta->sweep(gspec);
  ASSERT_GT(r1.gen_stats().evaluated, 0u);
  EXPECT_GT(r1.gen_stats().bump_cache_misses, 0u);
  EXPECT_EQ(cache.stats().misses, r1.gen_stats().bump_cache_misses);
  const size_t warm = cache.size();
  EXPECT_GT(warm, 0u);

  // Second sweep over the SAME cache: every shape is already resident —
  // zero misses, hits only, and the results stay bitwise identical.
  const auto r2 = h.fixture.sta->sweep(gspec);
  EXPECT_EQ(r2.gen_stats().bump_cache_misses, 0u);
  EXPECT_GT(r2.gen_stats().bump_cache_hits, 0u);
  EXPECT_EQ(cache.size(), warm);
  EXPECT_EQ(bits(r1.worst_slack()), bits(r2.worst_slack()));
  EXPECT_EQ(r1.worst_point().candidate, r2.worst_point().candidate);
  EXPECT_EQ(r1.worst_point().scenario_name, r2.worst_point().scenario_name);

  // And a sweep with NO external cache (generator-owned store) is
  // bitwise identical too — the cache is a pure memoization.
  gspec.bump_cache = nullptr;
  const auto r3 = h.fixture.sta->sweep(gspec);
  EXPECT_EQ(bits(r1.worst_slack()), bits(r3.worst_slack()));
  EXPECT_EQ(r1.worst_point().candidate, r3.worst_point().candidate);

  // Funnel identity never counts cache traffic.
  const auto& g = r2.gen_stats();
  EXPECT_EQ(g.generated, g.window_killed + g.correlation_killed +
                             g.set_killed + g.prune_killed + g.reused +
                             g.evaluated);
}

TEST(ScenGen, EmptyFunnelThrowsOnWorstPoint) {
  GeneratedSweepSpec gspec;
  gspec.space = tiny_space();
  const RejectAllRule reject;
  gspec.correlation = &reject;

  auto f = statest::random_engine(29);
  const auto gr = f.sta->sweep(gspec);
  EXPECT_EQ(gr.gen_stats().correlation_killed, gr.gen_stats().generated);
  EXPECT_THROW((void)gr.worst_slack(), util::Error);
  EXPECT_THROW((void)gr.worst_point(), util::Error);
}

}  // namespace
}  // namespace waveletic
