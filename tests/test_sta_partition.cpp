// Partition-sharded sweep propagation: partition cover/disjointness
// invariants, partition-DAG consistency, single-partition ==
// whole-graph equivalence, and randomized netlists asserting sharded
// vs unsharded propagation bitwise-identical across 1/2/4 threads and
// across repeated runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <vector>

#include "netlist/generators.hpp"
#include "sta/engine.hpp"
#include "sta/partition.hpp"
#include "sta/sweep.hpp"
#include "sta_test_util.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace nl = waveletic::netlist;
namespace st = waveletic::sta;
namespace tu = waveletic::statest;
namespace wu = waveletic::util;

namespace {

/// Checks the structural invariants every PartitionSet must satisfy.
void expect_valid_cover(const st::StaEngine& sta) {
  const st::PartitionSet& parts = sta.partitions();
  ASSERT_EQ(parts.num_vertices(), sta.vertex_count());
  // Cover + disjointness: every vertex in exactly one partition, and
  // partition_of agrees with the vertex lists.
  std::vector<int> seen(sta.vertex_count(), 0);
  for (size_t k = 0; k < parts.size(); ++k) {
    for (const int v : parts.vertices(k)) {
      ASSERT_GE(v, 0);
      ASSERT_LT(static_cast<size_t>(v), sta.vertex_count());
      ++seen[static_cast<size_t>(v)];
      EXPECT_EQ(parts.partition_of(v), static_cast<int>(k));
    }
    // Vertices are level-sorted (a valid serial propagation order).
    const auto& verts = parts.vertices(k);
    for (size_t i = 1; i < verts.size(); ++i) {
      EXPECT_LE(sta.vertex_levels()[static_cast<size_t>(verts[i - 1])],
                sta.vertex_levels()[static_cast<size_t>(verts[i])]);
    }
    EXPECT_GE(parts.width(k), verts.empty() ? 0u : 1u);
    EXPECT_LE(parts.width(k), verts.size());
  }
  for (size_t v = 0; v < sta.vertex_count(); ++v) {
    EXPECT_EQ(seen[v], 1) << "vertex " << v << " covered " << seen[v]
                          << " times";
  }
  // Interface set == endpoints of cross edges; cross edges connect
  // distinct partitions and imply the pred/succ lists.
  std::set<int> expect_interface;
  for (const auto& [from, to] : parts.cross_edges()) {
    EXPECT_NE(parts.partition_of(from), parts.partition_of(to));
    expect_interface.insert(from);
    expect_interface.insert(to);
    const auto pa = static_cast<uint32_t>(parts.partition_of(from));
    const auto pb = static_cast<uint32_t>(parts.partition_of(to));
    const auto& preds = parts.predecessors(pb);
    const auto& succs = parts.successors(pa);
    EXPECT_TRUE(std::binary_search(preds.begin(), preds.end(), pa));
    EXPECT_TRUE(std::binary_search(succs.begin(), succs.end(), pb));
  }
  std::vector<int> iface(expect_interface.begin(), expect_interface.end());
  EXPECT_EQ(parts.interface_vertices(), iface);
  for (size_t v = 0; v < sta.vertex_count(); ++v) {
    EXPECT_EQ(parts.is_interface(static_cast<int>(v)),
              expect_interface.count(static_cast<int>(v)) > 0);
  }
  // The partition DAG is acyclic (Kahn drains it completely).
  std::vector<size_t> indeg(parts.size(), 0);
  for (size_t k = 0; k < parts.size(); ++k) {
    indeg[k] = parts.predecessors(k).size();
  }
  std::vector<uint32_t> ready;
  for (size_t k = 0; k < parts.size(); ++k) {
    if (indeg[k] == 0) ready.push_back(static_cast<uint32_t>(k));
  }
  size_t drained = 0;
  while (!ready.empty()) {
    const uint32_t k = ready.back();
    ready.pop_back();
    ++drained;
    for (const uint32_t s : parts.successors(k)) {
      if (--indeg[s] == 0) ready.push_back(s);
    }
  }
  EXPECT_EQ(drained, parts.size()) << "partition DAG has a cycle";
}

}  // namespace

TEST(StaPartition, CoverDisjointAndDagInvariants) {
  {
    const auto net = nl::make_chain_tree(12);
    st::StaEngine sta(net, tu::vcl013());
    expect_valid_cover(sta);
    // Chains + fold tree must split into more than one shard.
    EXPECT_GT(sta.partitions().size(), 1u);
  }
  for (const uint64_t seed : {1ull, 7ull, 42ull}) {
    const auto f = tu::random_engine(seed);
    expect_valid_cover(*f.sta);
  }
}

TEST(StaPartition, ScheduleCoversEveryVertexOnceAtAnyThreshold) {
  const auto net = nl::make_chain_tree(9);
  st::StaEngine sta(net, tu::vcl013());
  for (const size_t threshold : {1ul, 4ul, 32ul, 4096ul}) {
    const auto& sched = sta.shard_schedule(threshold);
    ASSERT_EQ(sched.order().size(), sta.vertex_count());
    std::vector<int> seen(sta.vertex_count(), 0);
    for (const auto& t : sched.tasks()) {
      ASSERT_LE(t.begin, t.end);
      for (uint32_t i = t.begin; i < t.end; ++i) {
        ++seen[static_cast<size_t>(sched.order()[i])];
      }
      // A chunk never exceeds the fallback threshold unless it is a
      // whole narrow partition.
      if (sta.partitions().width(t.partition) > threshold) {
        EXPECT_LE(t.end - t.begin, threshold);
      }
    }
    for (const int c : seen) EXPECT_EQ(c, 1);
    EXPECT_EQ(sched.serial_order().size(), sched.tasks().size());
  }
  // Wider threshold → coarser schedule.
  EXPECT_GE(sta.shard_schedule(1).tasks().size(),
            sta.shard_schedule(4096).tasks().size());
}

TEST(StaPartition, SinglePartitionEqualsWholeGraph) {
  // Degenerate options on a synthetic diamond graph: whether edges are
  // all hard (pass-1 unions) or all cut candidates under a huge size
  // cap (pass-2 remerges), the connected graph collapses to ONE
  // partition with no cross edges and no interfaces.
  const std::vector<int> level = {0, 1, 1, 2, 3, 3};
  for (const bool candidates : {false, true}) {
    std::vector<st::PartitionEdge> edges = {
        {0, 1, candidates}, {0, 2, candidates}, {1, 3, candidates},
        {2, 3, candidates}, {3, 4, candidates}, {3, 5, candidates}};
    const auto parts = st::PartitionSet::build(6, level, edges, {});
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts.vertices(0).size(), 6u);
    EXPECT_TRUE(parts.cross_edges().empty());
    EXPECT_TRUE(parts.interface_vertices().empty());
    EXPECT_TRUE(parts.predecessors(0).empty());
    EXPECT_TRUE(parts.successors(0).empty());
  }
  // A tiny cap instead fragments the candidate version into shards
  // with real cross edges — the knob the greedy merge respects.
  st::PartitionOptions tiny;
  tiny.max_partition_vertices = 2;
  std::vector<st::PartitionEdge> edges = {{0, 1, true}, {0, 2, true},
                                          {1, 3, true}, {2, 3, true},
                                          {3, 4, true}, {3, 5, true}};
  const auto parts = st::PartitionSet::build(6, level, edges, tiny);
  EXPECT_GT(parts.size(), 1u);
  EXPECT_FALSE(parts.cross_edges().empty());

  // And on a real single-cone netlist the engine's own partitioning
  // yields one shard whose sharded sweep still equals the per-level
  // path bitwise (single-partition == whole-graph equivalence).
  const auto chain = nl::make_chain_tree(1);
  st::StaEngine single(chain, tu::vcl013());
  tu::constrain_chain_tree(single, 1);
  EXPECT_EQ(single.partitions().size(), 1u);
  st::SweepSpec spec;
  spec.threads = 2;
  spec.shard = true;
  const auto sharded = single.sweep(spec);
  spec.shard = false;
  const auto levels = single.sweep(spec);
  EXPECT_TRUE(tu::states_bitwise_equal(levels.state(0), sharded.state(0),
                                       &single));
}

TEST(StaPartition, ShardedBitwiseIdenticalToUnshardedAcrossThreads) {
  // Randomized netlists: the sharded (point × partition) schedule must
  // reproduce the legacy per-level fan-out bitwise at 1/2/4 threads.
  for (const uint64_t seed : {3ull, 11ull}) {
    const auto f = tu::random_engine(seed);
    const auto scenarios = tu::random_scenarios(f, 6);

    st::SweepSpec base;
    base.scenarios = scenarios;
    base.threads = 1;
    base.shard = false;  // the unsharded PR 3 oracle
    const auto oracle = f.sta->sweep(base);

    for (const int threads : {1, 2, 4}) {
      st::SweepSpec spec;
      spec.scenarios = scenarios;
      spec.threads = threads;
      spec.shard = true;
      const auto sharded = f.sta->sweep(spec);
      ASSERT_EQ(sharded.size(), oracle.size());
      for (size_t p = 0; p < sharded.size(); ++p) {
        EXPECT_TRUE(tu::states_bitwise_equal(oracle.state(p),
                                             sharded.state(p), f.sta.get()))
            << "seed " << seed << " threads " << threads << " point " << p;
      }
      // Repeated runs are bitwise stable too.
      const auto again = f.sta->sweep(spec);
      for (size_t p = 0; p < sharded.size(); ++p) {
        EXPECT_TRUE(tu::states_bitwise_equal(sharded.state(p),
                                             again.state(p), f.sta.get()))
            << "repeat, seed " << seed << " threads " << threads;
      }
    }
  }
}

TEST(StaPartition, WideThresholdFallbackStaysBitwiseIdentical) {
  // threshold 1 forces per-level chunking everywhere (maximum
  // fragmentation); a huge threshold forces one task per partition.
  const auto f = tu::random_engine(5, 8, 4, 10);
  const auto scenarios = tu::random_scenarios(f, 4);
  st::SweepSpec spec;
  spec.scenarios = scenarios;
  spec.threads = 4;
  spec.shard = true;
  spec.wide_partition_threshold = 1;
  const auto fine = f.sta->sweep(spec);
  spec.wide_partition_threshold = 1u << 20;
  const auto coarse = f.sta->sweep(spec);
  spec.shard = false;
  const auto levels = f.sta->sweep(spec);
  for (size_t p = 0; p < fine.size(); ++p) {
    EXPECT_TRUE(
        tu::states_bitwise_equal(fine.state(p), coarse.state(p), f.sta.get()));
    EXPECT_TRUE(tu::states_bitwise_equal(levels.state(p), fine.state(p),
                                         f.sta.get()));
  }
}

TEST(StaPartition, RunUsesShardsAndMatchesLegacyEvaluate) {
  const int width = 10;
  const auto net = nl::make_chain_tree(width);
  st::StaEngine sta(net, tu::vcl013());
  tu::constrain_chain_tree(sta, width);
  sta.set_threads(4);
  sta.run();  // partition-sharded path

  // Legacy oracle: serial evaluate() with no workspace, no shards.
  sta.prepare();
  const auto table = sta.compile_edge_annotations();
  st::StaEngine::EvalContext ctx;
  ctx.edge_noise = table.data();
  ctx.method = &sta.noise_method();
  st::TimingState state;
  sta.evaluate(state, ctx);
  for (int rf = 0; rf < 2; ++rf) {
    const auto r = static_cast<st::RiseFall>(rf);
    EXPECT_EQ(sta.timing("y", r).arrival,
              sta.timing_in(state, "y", r).arrival);
    EXPECT_EQ(sta.timing("y", r).slew, sta.timing_in(state, "y", r).slew);
    EXPECT_EQ(sta.timing("y", r).required,
              sta.timing_in(state, "y", r).required);
  }
}

TEST(StaPartition, TaskGraphExecutorRunsDagsAndPropagatesErrors) {
  // A diamond DAG per tile: 0 → {1, 2} → 3.  Records completion order
  // constraints rather than a fixed schedule.
  const std::vector<uint32_t> indegree = {0, 1, 1, 2};
  const std::vector<std::vector<uint32_t>> successors = {
      {1, 2}, {3}, {3}, {}};
  for (const int threads : {1, 2, 4}) {
    wu::ThreadPool pool(threads);
    const size_t tiles = 5;
    std::vector<std::atomic<int>> done(4 * tiles);
    for (auto& d : done) d.store(0);
    std::atomic<int> violations{0};
    pool.run_graph(
        {indegree, successors, tiles}, [&](size_t, size_t task) {
          const size_t tile = task / 4;
          const size_t local = task % 4;
          if (local == 1 || local == 2) {
            if (done[tile * 4 + 0].load() == 0) violations++;
          }
          if (local == 3) {
            if (done[tile * 4 + 1].load() == 0 ||
                done[tile * 4 + 2].load() == 0) {
              violations++;
            }
          }
          done[task].store(1);
        });
    for (auto& d : done) EXPECT_EQ(d.load(), 1);
    EXPECT_EQ(violations.load(), 0);

    // Exceptions cancel the remainder and surface on the caller.
    EXPECT_THROW(pool.run_graph({indegree, successors, tiles},
                                [&](size_t, size_t task) {
                                  if (task == 2) throw wu::Error("boom");
                                }),
                 wu::Error);
    // The pool stays usable afterwards.
    std::atomic<int> count{0};
    pool.run_graph({indegree, successors, 1},
                   [&](size_t, size_t) { count++; });
    EXPECT_EQ(count.load(), 4);
  }
}

TEST(StaPartition, BalanceAwareMergeKeepsShardSizesUniform) {
  // Blocks A{0,1,2}, B{3}, C{4}, D{5}, E{6,7,8} (hard intra-block
  // edges) with candidate edges ordered A-B, B-C, C-D, D-E and cap 5.
  // An in-order greedy walk would merge A+B (4) then +C (5) and leave
  // {D,E} as 5-vs-4 blocks with max size 5; the balance-aware
  // smallest-merge-first order instead builds {B,C,D} and keeps A and E
  // whole: three shards of exactly 3.
  const std::vector<int> level = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<st::PartitionEdge> edges = {
      {0, 1, false}, {1, 2, false},                // A
      {6, 7, false}, {7, 8, false},                // E
      {2, 3, true},  {3, 4, true},  {4, 5, true},  // A-B, B-C, C-D
      {5, 6, true},                                // D-E
  };
  st::PartitionOptions opt;
  opt.max_partition_vertices = 5;
  const auto parts = st::PartitionSet::build(9, level, edges, opt);
  ASSERT_EQ(parts.size(), 3u);
  for (size_t k = 0; k < parts.size(); ++k) {
    EXPECT_EQ(parts.vertices(k).size(), 3u) << "shard " << k;
  }

  // Size-distribution invariants on a deterministic pseudo-random
  // candidate-only DAG (every merge goes through the capped pass, so
  // the cap is a hard guarantee there — pass-1 "hard" unions of real
  // netlists are intentionally uncapped): all shards within the cap,
  // and smallest-first keeps the distribution dense near it rather than
  // one capped block trailing fragments.
  {
    const size_t n = 300;
    std::vector<int> lvl(n);
    for (size_t v = 0; v < n; ++v) lvl[v] = static_cast<int>(v);
    std::vector<st::PartitionEdge> cedges;
    uint64_t state = 12345;
    auto next = [&state] {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      return state >> 33;
    };
    for (size_t i = 0; i + 1 < n; ++i) {  // spanning path + chords
      cedges.push_back({static_cast<int>(i), static_cast<int>(i + 1), true});
    }
    for (int i = 0; i < 150; ++i) {
      const auto a = static_cast<int>(next() % (n - 1));
      const auto b = a + 1 + static_cast<int>(next() % (n - static_cast<size_t>(a) - 1));
      cedges.push_back({a, b, true});
    }
    st::PartitionOptions ropt;
    ropt.max_partition_vertices = 16;
    const auto rparts = st::PartitionSet::build(n, lvl, cedges, ropt);
    size_t covered = 0;
    size_t well_filled = 0;
    for (size_t k = 0; k < rparts.size(); ++k) {
      const size_t sz = rparts.vertices(k).size();
      EXPECT_LE(sz, 16u);
      covered += sz;
      if (sz * 2 >= 16) ++well_filled;
    }
    EXPECT_EQ(covered, n);
    // Balance: on a connected graph the smallest-first merge leaves at
    // most a couple of under-half-cap shards (the in-order walk strands
    // many more behind each capped block).
    EXPECT_GE(well_filled + 2, rparts.size());
  }
}

TEST(StaPartition, NetlistPartitionQueries) {
  const auto net = nl::make_chain_tree(4);
  // Degrees: input net a0 = port + one sink; c0_1 = driver + one sink.
  EXPECT_EQ(net.net_degree("a0"), 2);
  EXPECT_EQ(net.net_degree("c0_1"), 2);
  EXPECT_EQ(net.net_degree(net.net_ordinal("y")), 2);  // driver + port
  EXPECT_EQ(net.net_degree(-1), 0);
  EXPECT_TRUE(net.is_interface_net("a0"));
  EXPECT_TRUE(net.is_interface_net("y"));
  EXPECT_FALSE(net.is_interface_net("c0_1"));
  // The chain tree is one connected component; two disjoint trees in
  // one netlist give two.
  EXPECT_EQ(net.connected_components().count, 1);
  nl::Netlist two;
  two.add_port("a", nl::PortDirection::kInput);
  two.add_port("b", nl::PortDirection::kInput);
  two.add_port("x", nl::PortDirection::kOutput);
  two.add_port("y", nl::PortDirection::kOutput);
  two.add_instance({"u1", "INVX1", {{"A", "a"}, {"Y", "x"}}});
  two.add_instance({"u2", "INVX1", {{"A", "b"}, {"Y", "y"}}});
  const auto comps = two.connected_components();
  EXPECT_EQ(comps.count, 2);
  EXPECT_EQ(comps.net_component[static_cast<size_t>(two.net_ordinal("a"))],
            comps.net_component[static_cast<size_t>(two.net_ordinal("x"))]);
  EXPECT_NE(comps.net_component[static_cast<size_t>(two.net_ordinal("a"))],
            comps.net_component[static_cast<size_t>(two.net_ordinal("b"))]);
}
