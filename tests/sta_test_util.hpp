#pragma once

/// \file sta_test_util.hpp
/// Shared STA test scaffolding: the once-per-process VCL013 library,
/// netlist constraint helpers, aggressor scenario builders, random
/// engine fixtures, and the bitwise TimingState comparator with
/// first-divergence diagnostics.  test_sta_parallel, test_sta_sweep,
/// test_sta_partition and test_kernels all build on this instead of
/// copy-pasting their own builders.

#include <gtest/gtest.h>

#include <bit>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "charlib/characterize.hpp"
#include "liberty/library.hpp"
#include "netlist/generators.hpp"
#include "netlist/netlist.hpp"
#include "sta/engine.hpp"
#include "sta/sweep.hpp"
#include "wave/ramp.hpp"

namespace waveletic::statest {

/// The VCL013 library, characterized once and shared by every suite in
/// the process (characterization is the slow part of these tests).
inline const liberty::Library& vcl013() {
  static const liberty::Library library =
      charlib::build_vcl013_library_fast();
  return library;
}

/// Standard constraints for make_chain_tree(width) netlists: staggered
/// input arrivals/slews, an output load and a required time on y.
inline void constrain_chain_tree(sta::StaEngine& sta, int width) {
  for (int i = 0; i < width; ++i) {
    sta.set_input("a" + std::to_string(i), 0.01e-9 * i,
                  (80 + 7 * i) * 1e-12);
  }
  sta.set_output_load("y", 6e-15);
  sta.set_required("y", 2e-9);
}

/// Generic constraints for any netlist (used by the random-DAG
/// fixtures): every input port gets staggered arrival/slew, every
/// output port gets a load and a required time.
inline void constrain_ports(sta::StaEngine& sta,
                            const netlist::Netlist& nl) {
  int i = 0;
  int o = 0;
  for (const auto& port : nl.ports()) {
    if (port.direction == netlist::PortDirection::kInput) {
      sta.set_input(port.name, 0.008e-9 * i, (75 + 9 * (i % 13)) * 1e-12);
      ++i;
    } else {
      sta.set_output_load(port.name, (4 + (o % 3)) * 1e-15);
      sta.set_required(port.name, 2.5e-9);
      ++o;
    }
  }
}

/// Aggressor-bump scenario on chain `chain` of a chain-tree netlist,
/// parameterized by alignment/strength (needs the clean run's victim
/// ramp).
inline sta::NoiseScenario chain_bump_scenario(const sta::StaEngine& clean,
                                              int chain, double alignment,
                                              double strength) {
  const std::string net = "c" + std::to_string(chain) + "_1";
  const auto& t = clean.timing("inv" + std::to_string(chain) + "_2/A",
                               sta::RiseFall::kFall);
  return sta::make_aggressor_scenario(net, t.arrival, t.slew,
                                      vcl013().nom_voltage,
                                      wave::Polarity::kFalling, alignment,
                                      strength);
}

/// A netlist + engine pair (the engine references the netlist, so both
/// live together).  Movable via unique_ptr members.
struct EngineFixture {
  std::unique_ptr<netlist::Netlist> netlist;
  std::unique_ptr<sta::StaEngine> sta;
};

/// Builds a constrained engine over a seed-deterministic random DAG —
/// the randomized-netlist entry point the determinism suites sweep.
inline EngineFixture random_engine(uint64_t seed, int inputs = 6,
                                   int layers = 5, int layer_width = 7) {
  EngineFixture f;
  f.netlist = std::make_unique<netlist::Netlist>(
      netlist::make_random_dag(seed, inputs, layers, layer_width));
  f.sta = std::make_unique<sta::StaEngine>(*f.netlist, vcl013());
  constrain_ports(*f.sta, *f.netlist);
  return f;
}

/// Scenarios for a random-DAG fixture: aggressor bumps on the first
/// few gate output nets that actually have a falling victim transition
/// at their sinks (derived from a clean run of `fixture`).
inline std::vector<sta::NoiseScenario> random_scenarios(
    const EngineFixture& fixture, int count) {
  sta::StaEngine clean(*fixture.netlist, vcl013());
  constrain_ports(clean, *fixture.netlist);
  clean.run();
  std::vector<sta::NoiseScenario> out;
  int variant = 0;
  while (static_cast<int>(out.size()) < count) {
    for (const auto& inst : fixture.netlist->instances()) {
      if (static_cast<int>(out.size()) >= count) break;
      const auto& net = inst.pins.at("A");
      const auto& t = clean.timing(inst.name + "/A", sta::RiseFall::kFall);
      if (!t.valid || t.slew <= 0.0) continue;
      out.push_back(sta::make_aggressor_scenario(
          net, t.arrival, t.slew, vcl013().nom_voltage,
          wave::Polarity::kFalling, (variant % 5 - 2) * 12e-12,
          0.25 + 0.05 * (variant % 4)));
      ++variant;
    }
    ++variant;  // next lap perturbs alignment/strength
  }
  return out;
}

/// Bitwise comparison of two full timing states.  On divergence the
/// failure message pinpoints the FIRST diverging (vertex, transition,
/// field) — with the vertex name when an engine is supplied — plus the
/// exact bit patterns and the total divergent-field count.
inline ::testing::AssertionResult states_bitwise_equal(
    const sta::TimingState& a, const sta::TimingState& b,
    const sta::StaEngine* sta = nullptr) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "state sizes differ: " << a.size() << " vs " << b.size();
  }
  auto bits = [](double x) { return std::bit_cast<uint64_t>(x); };
  std::string first;
  size_t divergent = 0;
  for (size_t v = 0; v < a.size(); ++v) {
    for (int rf = 0; rf < 2; ++rf) {
      const auto& ta = a[v].timing[rf];
      const auto& tb = b[v].timing[rf];
      struct Field {
        const char* name;
        double x, y;
      };
      const Field fields[] = {{"arrival", ta.arrival, tb.arrival},
                              {"slew", ta.slew, tb.slew},
                              {"required", ta.required, tb.required}};
      const bool valid_diff = ta.valid != tb.valid;
      if (valid_diff) ++divergent;
      for (const auto& f : fields) {
        if (bits(f.x) != bits(f.y)) ++divergent;
      }
      if (first.empty() &&
          (valid_diff || bits(ta.arrival) != bits(tb.arrival) ||
           bits(ta.slew) != bits(tb.slew) ||
           bits(ta.required) != bits(tb.required))) {
        std::ostringstream os;
        os << "first divergence at vertex " << v;
        if (sta != nullptr && v < sta->vertex_count()) {
          os << " [" << sta->vertex_name(v) << "]";
        }
        os << " (" << sta::to_string(static_cast<sta::RiseFall>(rf)) << ")";
        if (valid_diff) {
          os << " valid: " << ta.valid << " vs " << tb.valid;
        }
        for (const auto& f : fields) {
          if (bits(f.x) != bits(f.y)) {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          " %s: %.17g (0x%016" PRIx64
                          ") vs %.17g (0x%016" PRIx64 ")",
                          f.name, f.x, bits(f.x), f.y, bits(f.y));
            os << buf;
            break;  // first diverging field only
          }
        }
        first = os.str();
      }
    }
  }
  if (divergent == 0) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << first << "; " << divergent << " divergent field(s) total over "
         << a.size() << " vertices";
}

}  // namespace waveletic::statest
