// Liberty model/parser/writer tests: generic tree parsing, semantic
// mapping with unit scaling, NLDM interpolation properties, round-trip.

#include <gtest/gtest.h>

#include <cmath>

#include "liberty/library.hpp"
#include "liberty/nldm.hpp"
#include "liberty/parser.hpp"
#include "liberty/writer.hpp"
#include "util/error.hpp"

namespace lb = waveletic::liberty;
namespace wu = waveletic::util;

namespace {

const char* kSmallLib = R"(
/* test library */
library (testlib) {
  time_unit : "1ns";
  capacitive_load_unit (1, pf);
  nom_voltage : 1.2;
  slew_lower_threshold_pct_rise : 10;
  slew_upper_threshold_pct_rise : 90;
  input_threshold_pct_rise : 50;

  lu_table_template (delay_template) {
    variable_1 : input_net_transition;
    variable_2 : total_output_net_capacitance;
    index_1 ("0.01, 0.1, 0.4");
    index_2 ("0.001, 0.01, 0.1");
  }

  cell (INVX1) {
    area : 1.0;
    pin (A) {
      direction : input;
      capacitance : 0.0016;
    }
    pin (Y) {
      direction : output;
      max_capacitance : 0.2;
      function : "!A";
      timing () {
        related_pin : "A";
        timing_sense : negative_unate;
        cell_rise (delay_template) {
          values ("0.02, 0.05, 0.30", \
                  "0.03, 0.06, 0.31", \
                  "0.06, 0.09, 0.34");
        }
        rise_transition (delay_template) {
          values ("0.02, 0.07, 0.50", \
                  "0.03, 0.08, 0.51", \
                  "0.08, 0.12, 0.55");
        }
        cell_fall (delay_template) {
          values ("0.015, 0.04, 0.25", \
                  "0.025, 0.05, 0.26", \
                  "0.05, 0.08, 0.29");
        }
        fall_transition (delay_template) {
          values ("0.015, 0.05, 0.40", \
                  "0.025, 0.06, 0.41", \
                  "0.06, 0.10, 0.45");
        }
      }
    }
  }
}
)";

}  // namespace

// ---------------------------------------------------------------------------
// Generic tree
// ---------------------------------------------------------------------------

TEST(LibertyTree, ParsesGroupsAttributesComplex) {
  const auto tree = lb::parse_liberty_tree(kSmallLib);
  EXPECT_EQ(tree.type, "library");
  ASSERT_FALSE(tree.args.empty());
  EXPECT_EQ(tree.args[0], "testlib");
  ASSERT_NE(tree.find_attribute("time_unit"), nullptr);
  EXPECT_EQ(tree.find_attribute("time_unit")->value, "1ns");
  ASSERT_NE(tree.find_complex("capacitive_load_unit"), nullptr);
  EXPECT_EQ(tree.find_complex("capacitive_load_unit")->values.size(), 2u);
  EXPECT_EQ(tree.children_of_type("cell").size(), 1u);
  EXPECT_EQ(tree.children_of_type("lu_table_template").size(), 1u);
}

TEST(LibertyTree, HandlesCommentsAndContinuations) {
  const auto tree = lb::parse_liberty_tree(
      "library (x) { // line comment\n"
      "  /* block\n     comment */\n"
      "  foo : 1; \\\n"
      "  bar : \"a b\";\n"
      "}\n");
  EXPECT_NE(tree.find_attribute("foo"), nullptr);
  EXPECT_EQ(tree.find_attribute("bar")->value, "a b");
}

TEST(LibertyTree, ErrorsOnBadSyntax) {
  EXPECT_THROW((void)lb::parse_liberty_tree("library (x) {"), wu::Error);
  EXPECT_THROW((void)lb::parse_liberty_tree("library (x) { foo : ; }"),
               wu::Error);
  EXPECT_THROW((void)lb::parse_liberty_tree("library (x) {} extra"),
               wu::Error);
  EXPECT_THROW((void)lb::parse_liberty_tree("library (x) { \"str\" }"),
               wu::Error);
}

TEST(LibertyTree, NumberListParsing) {
  const auto nums = lb::parse_number_list("0.01, 0.1,0.4  1.5");
  ASSERT_EQ(nums.size(), 4u);
  EXPECT_DOUBLE_EQ(nums[0], 0.01);
  EXPECT_DOUBLE_EQ(nums[3], 1.5);
  EXPECT_THROW((void)lb::parse_number_list("a b"), wu::Error);
}

// ---------------------------------------------------------------------------
// Semantic mapping
// ---------------------------------------------------------------------------

TEST(LibertySemantic, UnitsScaledToSi) {
  const auto lib = lb::parse_liberty(kSmallLib);
  EXPECT_EQ(lib.name, "testlib");
  EXPECT_DOUBLE_EQ(lib.time_unit, 1e-9);
  EXPECT_DOUBLE_EQ(lib.capacitance_unit, 1e-12);
  const auto& cell = lib.cell("INVX1");
  const auto* a = cell.find_pin("A");
  ASSERT_NE(a, nullptr);
  EXPECT_NEAR(a->capacitance, 1.6e-15, 1e-21);  // 0.0016 pF
  const auto& tmpl = *lib.find_template("delay_template");
  EXPECT_NEAR(tmpl.index_1[0], 0.01e-9, 1e-15);   // 0.01 ns
  EXPECT_NEAR(tmpl.index_2[2], 0.1e-12, 1e-18);   // 0.1 pF
}

TEST(LibertySemantic, ThresholdsAndVoltage) {
  const auto lib = lb::parse_liberty(kSmallLib);
  EXPECT_DOUBLE_EQ(lib.nom_voltage, 1.2);
  EXPECT_DOUBLE_EQ(lib.slew_lower, 0.1);
  EXPECT_DOUBLE_EQ(lib.slew_upper, 0.9);
  EXPECT_DOUBLE_EQ(lib.delay_threshold, 0.5);
}

TEST(LibertySemantic, ArcLookupAtGridPoint) {
  const auto lib = lb::parse_liberty(kSmallLib);
  const auto& y = lib.cell("INVX1").output_pin();
  const auto* arc = y.find_arc("A");
  ASSERT_NE(arc, nullptr);
  EXPECT_EQ(arc->sense, lb::TimingSense::kNegativeUnate);
  // Exact grid point: in_slew = 0.1ns, load = 0.01pF -> 0.06ns.
  const auto rise = arc->rise(0.1e-9, 0.01e-12);
  EXPECT_NEAR(rise.delay, 0.06e-9, 1e-15);
  EXPECT_NEAR(rise.out_slew, 0.08e-9, 1e-15);
  const auto fall = arc->fall(0.1e-9, 0.01e-12);
  EXPECT_NEAR(fall.delay, 0.05e-9, 1e-15);
}

TEST(LibertySemantic, CellAndPinLookupErrors) {
  const auto lib = lb::parse_liberty(kSmallLib);
  EXPECT_THROW((void)lib.cell("NOPE"), wu::Error);
  EXPECT_EQ(lib.find_cell("nope"), nullptr);
  EXPECT_NE(lib.find_cell("invx1"), nullptr);  // case-insensitive
  const auto& cell = lib.cell("INVX1");
  EXPECT_EQ(cell.find_pin("Z"), nullptr);
  EXPECT_EQ(cell.input_pins().size(), 1u);
  EXPECT_EQ(cell.output_pin().name, "Y");
}

// ---------------------------------------------------------------------------
// NLDM interpolation properties
// ---------------------------------------------------------------------------

TEST(Nldm, ExactAtAllCorners) {
  lb::NldmTable t({1.0, 2.0, 4.0}, {10.0, 20.0},
                  {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_DOUBLE_EQ(t.lookup(t.index_1()[i], t.index_2()[j]),
                       t.value_at(i, j));
    }
  }
}

TEST(Nldm, BilinearMidpoint) {
  lb::NldmTable t({0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(t.lookup(0.5, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(t.lookup(0.25, 0.75), 0.25 * 2.0 + 0.75);
}

TEST(Nldm, LinearExtrapolationOutsideGrid) {
  lb::NldmTable t({0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0, 2.0, 3.0});
  // Planar table z = 2*x1 + x2 extends exactly.
  EXPECT_DOUBLE_EQ(t.lookup(2.0, 0.0), 4.0);
  EXPECT_DOUBLE_EQ(t.lookup(-1.0, 0.0), -2.0);
  EXPECT_DOUBLE_EQ(t.lookup(0.0, 3.0), 3.0);
}

TEST(Nldm, OneDimensionalTable) {
  lb::NldmTable t({0.0, 1.0, 2.0}, {}, {5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(t.lookup(0.5), 6.0);
  EXPECT_DOUBLE_EQ(t.lookup(3.0), 11.0);  // extrapolated
}

TEST(Nldm, RejectsMalformedTables) {
  EXPECT_THROW(lb::NldmTable({1.0, 1.0}, {}, {0.0, 0.0}), wu::Error);
  EXPECT_THROW(lb::NldmTable({1.0, 2.0}, {1.0}, {0.0}), wu::Error);
  EXPECT_THROW(lb::NldmTable({}, {}, {}), wu::Error);
}

TEST(Nldm, MonotoneTablePreservedByInterpolation) {
  // Delay tables are monotone in load; interpolation must preserve that
  // along any scanline.
  lb::NldmTable t({0.01, 0.1, 0.4}, {0.001, 0.01, 0.1},
                  {0.02, 0.05, 0.30, 0.03, 0.06, 0.31, 0.06, 0.09, 0.34});
  double prev = -1.0;
  for (double load = 0.001; load <= 0.1; load += 0.001) {
    const double d = t.lookup(0.2, load);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(Nldm, LocateClampsToEdgeSegments) {
  const std::vector<double> axis{1.0, 2.0, 4.0};
  EXPECT_EQ(lb::locate(axis, 0.0).lo, 0u);
  EXPECT_LT(lb::locate(axis, 0.0).frac, 0.0);
  EXPECT_EQ(lb::locate(axis, 8.0).lo, 1u);
  EXPECT_GT(lb::locate(axis, 8.0).frac, 1.0);
  EXPECT_EQ(lb::locate(axis, 3.0).lo, 1u);
  EXPECT_NEAR(lb::locate(axis, 3.0).frac, 0.5, 1e-12);
}

// ---------------------------------------------------------------------------
// Round trip
// ---------------------------------------------------------------------------

TEST(LibertyRoundTrip, WriteThenParsePreservesEverything) {
  const auto lib = lb::parse_liberty(kSmallLib);
  const auto text = lb::to_liberty_string(lib);
  const auto lib2 = lb::parse_liberty(text);

  EXPECT_EQ(lib2.name, lib.name);
  EXPECT_DOUBLE_EQ(lib2.nom_voltage, lib.nom_voltage);
  ASSERT_EQ(lib2.cells.size(), lib.cells.size());
  const auto& y1 = lib.cell("INVX1").output_pin();
  const auto& y2 = lib2.cell("INVX1").output_pin();
  EXPECT_EQ(y2.function, y1.function);
  ASSERT_EQ(y2.arcs.size(), y1.arcs.size());
  const auto& a1 = y1.arcs[0];
  const auto& a2 = y2.arcs[0];
  EXPECT_EQ(a2.sense, a1.sense);
  ASSERT_EQ(a2.cell_rise.values().size(), a1.cell_rise.values().size());
  for (size_t i = 0; i < a1.cell_rise.values().size(); ++i) {
    EXPECT_NEAR(a2.cell_rise.values()[i], a1.cell_rise.values()[i],
                std::fabs(a1.cell_rise.values()[i]) * 1e-9 + 1e-18);
  }
  // Interpolated lookups agree everywhere, not just at corners.
  for (double slew : {0.02e-9, 0.15e-9, 0.35e-9}) {
    for (double load : {0.002e-12, 0.05e-12}) {
      EXPECT_NEAR(y2.arcs[0].rise(slew, load).delay,
                  y1.arcs[0].rise(slew, load).delay, 1e-15);
    }
  }
}

TEST(LibertyRoundTrip, MissingTablesStayMissing) {
  lb::Library lib;
  lb::Cell cell;
  cell.name = "TIE1";
  lb::Pin out;
  out.name = "Y";
  out.direction = lb::PinDirection::kOutput;
  out.function = "1";
  cell.pins.push_back(out);
  lib.add_cell(std::move(cell));
  const auto lib2 = lb::parse_liberty(lb::to_liberty_string(lib));
  EXPECT_TRUE(lib2.cell("TIE1").output_pin().arcs.empty());
}

TEST(Library, DuplicateCellRejected) {
  lb::Library lib;
  lb::Cell c;
  c.name = "X";
  lib.add_cell(c);
  EXPECT_THROW(lib.add_cell(c), wu::Error);
}
