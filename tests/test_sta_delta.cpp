// Baseline + delta scenario propagation and slack-bound pruning:
// dirty-cone plan structure (engine graph vs netlist-level fanout
// query), delta-vs-full bitwise identity on randomized netlists at
// 1/2/4 threads with scenarios touching one/few/all nets and
// engine-level annotation overlays, endpoint-only agreement, prune=safe
// exactness (worst_slack/worst_point/critical_endpoint never change),
// bound validity, pruned/reused accessor errors, and ScenarioBatch
// flag forwarding.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "netlist/generators.hpp"
#include "netlist/netlist.hpp"
#include "sta/batch.hpp"
#include "sta/engine.hpp"
#include "sta/sweep.hpp"
#include "sta_test_util.hpp"
#include "util/error.hpp"

namespace lb = waveletic::liberty;
namespace nl = waveletic::netlist;
namespace st = waveletic::sta;
namespace tu = waveletic::statest;
namespace wu = waveletic::util;
namespace wv = waveletic::wave;

namespace {

/// One scenario annotating EVERY instance input net that has a valid
/// falling victim transition — the cone-covers-everything stress shape.
st::NoiseScenario all_nets_scenario(const tu::EngineFixture& f) {
  st::StaEngine clean(*f.netlist, tu::vcl013());
  tu::constrain_ports(clean, *f.netlist);
  clean.run();
  st::NoiseScenario s;
  s.name = "all-nets";
  for (const auto& inst : f.netlist->instances()) {
    const auto& net = inst.pins.at("A");
    const auto& t = clean.timing(inst.name + "/A", st::RiseFall::kFall);
    if (!t.valid || t.slew <= 0.0) continue;
    auto one = st::make_aggressor_scenario(net, t.arrival, t.slew,
                                           tu::vcl013().nom_voltage,
                                           wv::Polarity::kFalling, 5e-12, 0.3);
    s.annotate(net, one.entries[0].annotation.waveform,
               one.entries[0].annotation.polarity);
  }
  return s;
}

std::vector<st::Corner> two_corners() {
  st::Corner slow;
  slow.name = "slow";
  slow.cell_delay_scale = 1.10;
  slow.cell_slew_scale = 1.06;
  slow.wire_delay_scale = 1.20;
  return {st::Corner{}, slow};
}

/// The one/few(overlapping)/all-nets scenario mix every delta suite
/// sweeps.
std::vector<st::NoiseScenario> mixed_scenarios(const tu::EngineFixture& f) {
  auto scenarios = tu::random_scenarios(f, 4);  // one net each
  st::NoiseScenario merged;                     // few nets, overlapping cones
  merged.name = "merged";
  for (int i = 0; i < 3; ++i) {
    for (const auto& e : scenarios[static_cast<size_t>(i)].entries) {
      merged.annotate(e.net, e.annotation.waveform, e.annotation.polarity);
    }
  }
  scenarios.push_back(std::move(merged));
  scenarios.push_back(all_nets_scenario(f));
  return scenarios;
}

}  // namespace

TEST(StaDelta, DeltaPlanMatchesNetlistFanoutCone) {
  const auto net = nl::make_chain_tree(4);
  st::StaEngine sta(net, tu::vcl013());
  tu::constrain_chain_tree(sta, 4);

  const auto bump = st::make_aggressor_scenario(
      "c0_1", 0.2e-9, 80e-12, tu::vcl013().nom_voltage,
      wv::Polarity::kFalling, 0.0, 0.4);

  const auto plan = sta.delta_plan(bump);
  ASSERT_EQ(plan.num_vertices, sta.vertex_count());
  ASSERT_FALSE(plan.forward.empty());

  auto contains = [](const std::vector<int>& v, int x) {
    return std::find(v.begin(), v.end(), x) != v.end();
  };
  // The victim chain and the fold tree are dirty; sibling chains are not.
  EXPECT_TRUE(contains(plan.forward, sta.pin("inv0_2/A").index));
  EXPECT_TRUE(contains(plan.forward, sta.pin("y").index));
  EXPECT_FALSE(contains(plan.forward, sta.pin("inv1_1/A").index));
  EXPECT_FALSE(contains(plan.forward, sta.pin("inv1_1/Y").index));
  // forward ⊆ backward (required times recompute over the fanin
  // closure of the cone), and both are level-sorted.
  for (const int v : plan.forward) EXPECT_TRUE(contains(plan.backward, v));
  for (size_t i = 1; i < plan.forward.size(); ++i) {
    EXPECT_LE(sta.vertex_levels()[static_cast<size_t>(plan.forward[i - 1])],
              sta.vertex_levels()[static_cast<size_t>(plan.forward[i])]);
  }
  for (size_t i = 1; i < plan.backward.size(); ++i) {
    EXPECT_GE(sta.vertex_levels()[static_cast<size_t>(plan.backward[i - 1])],
              sta.vertex_levels()[static_cast<size_t>(plan.backward[i])]);
  }
  // Cone ∩ partitions: some, but not all, partitions are touched.
  ASSERT_FALSE(plan.partitions.empty());
  EXPECT_LT(plan.partitions.size(), sta.partitions().size());
  // The single endpoint y lies in the cone.
  ASSERT_EQ(plan.endpoints.size(), 1u);
  EXPECT_EQ(plan.endpoints[0], 0);

  // Netlist-layer counterpart: the net-level transitive fanout under a
  // liberty-driven direction predicate covers every dirty instance
  // input pin's net.
  const auto& lib = tu::vcl013();
  const int seed_ord = net.net_ordinal("c0_1");
  const std::vector<int> seeds = {seed_ord};
  const auto cone_nets = net.transitive_fanout_nets(
      seeds, [&](const nl::Instance& inst, const std::string& pin) {
        return lib.find_cell(inst.cell)->find_pin(pin)->direction ==
               lb::PinDirection::kOutput;
      });
  EXPECT_TRUE(std::binary_search(cone_nets.begin(), cone_nets.end(),
                                 seed_ord));  // seeds included
  EXPECT_TRUE(std::binary_search(cone_nets.begin(), cone_nets.end(),
                                 net.net_ordinal("c0_2")));
  EXPECT_TRUE(std::binary_search(cone_nets.begin(), cone_nets.end(),
                                 net.net_ordinal("y")));
  EXPECT_FALSE(std::binary_search(cone_nets.begin(), cone_nets.end(),
                                  net.net_ordinal("c1_1")));
  EXPECT_FALSE(std::binary_search(cone_nets.begin(), cone_nets.end(),
                                  net.net_ordinal("a0")));
  for (const int v : plan.forward) {
    const std::string& name = sta.vertex_name(static_cast<size_t>(v));
    const auto slash = name.find('/');
    const std::string nname =
        slash == std::string::npos
            ? name
            : net.find_instance(name.substr(0, slash))
                  ->pins.at(name.substr(slash + 1));
    EXPECT_TRUE(std::binary_search(cone_nets.begin(), cone_nets.end(),
                                   net.net_ordinal(nname)))
        << "dirty vertex " << name << " on net " << nname
        << " outside the netlist-level cone";
  }

  // A clean scenario has an empty plan: its point IS the baseline.
  EXPECT_TRUE(sta.delta_plan(st::NoiseScenario{}).forward.empty());
  // Unknown nets are rejected naming the scenario.
  st::NoiseScenario bad = bump;
  bad.entries[0].net = "no_such_net";
  EXPECT_THROW((void)sta.delta_plan(bad), wu::Error);
}

TEST(StaDelta, DeltaBitwiseIdenticalToFullAcrossThreads) {
  for (const uint64_t seed : {3ull, 11ull}) {
    const auto f = tu::random_engine(seed);
    st::SweepSpec spec;
    spec.corners = two_corners();
    spec.scenarios = mixed_scenarios(f);
    spec.threads = 1;
    spec.delta = false;  // full-graph-per-point oracle
    const auto oracle = f.sta->sweep(spec);

    for (const int threads : {1, 2, 4}) {
      spec.delta = true;
      spec.threads = threads;
      const auto delta = f.sta->sweep(spec);
      ASSERT_EQ(delta.size(), oracle.size());
      for (size_t p = 0; p < delta.size(); ++p) {
        EXPECT_TRUE(tu::states_bitwise_equal(oracle.state(p), delta.state(p),
                                             f.sta.get()))
            << "seed " << seed << " threads " << threads << " point " << p;
      }
      // Repeated delta runs are bitwise stable too.
      const auto again = f.sta->sweep(spec);
      for (size_t p = 0; p < delta.size(); ++p) {
        EXPECT_TRUE(tu::states_bitwise_equal(delta.state(p), again.state(p),
                                             f.sta.get()))
            << "repeat, seed " << seed << " threads " << threads;
      }
    }
  }
}

TEST(StaDelta, EngineLevelOverlayStaysBitwiseIdentical) {
  const auto f = tu::random_engine(7);
  const auto scenarios = tu::random_scenarios(f, 3);

  // Engine-level annotation on the net scenario 0 also touches: the
  // baseline carries it for every scenario, and scenario 0's own
  // annotation must win on the shared net (overlay semantics).
  const auto& e0 = scenarios[0].entries[0];
  auto engine_wave = e0.annotation.waveform.shifted(7e-12);
  f.sta->annotate_noisy_net(e0.net, engine_wave, e0.annotation.polarity);

  st::SweepSpec spec;
  spec.scenarios = scenarios;
  spec.threads = 2;
  spec.delta = false;
  const auto full = f.sta->sweep(spec);
  spec.delta = true;
  const auto delta = f.sta->sweep(spec);
  for (size_t p = 0; p < full.size(); ++p) {
    EXPECT_TRUE(
        tu::states_bitwise_equal(full.state(p), delta.state(p), f.sta.get()))
        << "point " << p;
  }
  f.sta->clear_noisy_nets();
}

TEST(StaDelta, EndpointOnlyDeltaAgreesWithFullBitwise) {
  const auto f = tu::random_engine(13);
  st::SweepSpec spec;
  spec.corners = two_corners();
  spec.scenarios = tu::random_scenarios(f, 5);
  spec.threads = 2;
  spec.delta = false;
  const auto full = f.sta->sweep(spec);

  spec.delta = true;
  spec.endpoint_only = true;
  spec.endpoint_chunk = 3;  // force several chunks
  const auto summary = f.sta->sweep(spec);
  ASSERT_EQ(summary.size(), full.size());
  for (size_t p = 0; p < full.size(); ++p) {
    EXPECT_EQ(summary.worst_slack(p), full.worst_slack(p)) << "point " << p;
    const auto cs = summary.critical_endpoint(p);
    const auto cf = full.critical_endpoint(p);
    EXPECT_EQ(cs.endpoint, cf.endpoint);
    EXPECT_EQ(cs.rf, cf.rf);
    EXPECT_EQ(cs.slack, cf.slack);
    for (size_t e = 0; e < summary.num_endpoints(); ++e) {
      for (int rf = 0; rf < 2; ++rf) {
        EXPECT_EQ(
            summary.endpoint_arrival(p, e, static_cast<st::RiseFall>(rf)),
            full.endpoint_arrival(p, e, static_cast<st::RiseFall>(rf)));
      }
    }
  }
  const auto stats = summary.prune_stats();
  EXPECT_EQ(stats.points, summary.size());
  EXPECT_EQ(stats.evaluated, summary.size());
  EXPECT_GT(stats.dirty_vertex_fraction, 0.0);
  EXPECT_LT(stats.dirty_vertex_fraction, 1.0);
}

TEST(StaDelta, PruneSafeNeverChangesTheExactAnswers) {
  for (const uint64_t seed : {5ull, 17ull}) {
    const auto f = tu::random_engine(seed, 8, 5, 9);
    // Mix critical (aligned, strong) and harmless (far, weak) bumps so
    // pruning has something to skip.
    st::StaEngine clean(*f.netlist, tu::vcl013());
    tu::constrain_ports(clean, *f.netlist);
    clean.run();
    std::vector<st::NoiseScenario> scenarios = tu::random_scenarios(f, 6);
    for (int i = 0; i < 12; ++i) {
      const auto& inst =
          f.netlist->instances()[static_cast<size_t>(i) %
                                 f.netlist->instances().size()];
      const auto& t = clean.timing(inst.name + "/A", st::RiseFall::kFall);
      if (!t.valid || t.slew <= 0.0) continue;
      scenarios.push_back(st::make_aggressor_scenario(
          inst.pins.at("A"), t.arrival, t.slew, tu::vcl013().nom_voltage,
          wv::Polarity::kFalling, 1.5e-9 + 10e-12 * i, 1e-7));
    }

    st::SweepSpec spec;
    spec.corners = two_corners();
    spec.scenarios = scenarios;
    spec.threads = 2;
    const auto exact = f.sta->sweep(spec);  // prune off, delta on

    for (const bool delta : {true, false}) {
      spec.delta = delta;
      spec.prune = st::PruneMode::kSafe;
      const auto pruned = f.sta->sweep(spec);
      spec.prune = st::PruneMode::kOff;

      // The sweep-level answers are exact and bitwise unchanged.
      const auto wp_exact = exact.worst_point();
      const auto wp_pruned = pruned.worst_point();
      EXPECT_EQ(wp_pruned.point, wp_exact.point) << "seed " << seed;
      EXPECT_EQ(wp_pruned.slack, wp_exact.slack);
      const auto ce_exact = exact.critical_endpoint(wp_exact.point);
      const auto ce_pruned = pruned.critical_endpoint(wp_pruned.point);
      EXPECT_EQ(ce_pruned.endpoint, ce_exact.endpoint);
      EXPECT_EQ(ce_pruned.slack, ce_exact.slack);

      const auto stats = pruned.prune_stats();
      EXPECT_EQ(stats.points, pruned.size());
      EXPECT_EQ(stats.evaluated + stats.pruned + stats.reused, stats.points);
      for (size_t p = 0; p < pruned.size(); ++p) {
        // Every bound is a TRUE lower bound on the exact worst slack —
        // the safety invariant pruning rests on.
        EXPECT_LE(pruned.worst_slack_bound(p), exact.worst_slack(p))
            << "seed " << seed << " point " << p << " delta " << delta;
        if (!pruned.pruned(p)) {
          EXPECT_EQ(pruned.worst_slack(p), exact.worst_slack(p))
              << "seed " << seed << " point " << p;
        } else {
          // A pruned point must be strictly beaten by the worst point.
          EXPECT_GT(pruned.worst_slack_bound(p), wp_exact.slack);
        }
      }
      if (stats.evaluated > 0) EXPECT_GE(stats.min_bound_gap, 0.0);
    }
  }
}

TEST(StaDelta, PrunedPointAccessorsThrowNamingFieldAndAlternatives) {
  const int width = 4;
  const auto net = nl::make_chain_tree(width);
  st::StaEngine clean(net, tu::vcl013());
  tu::constrain_chain_tree(clean, width);
  clean.run();

  // One genuinely critical scenario — a strong bump on the critical
  // chain (a3 arrives last, so chain 3 carries the worst path) — plus
  // enough harmless ones (bumps far past the transition, too weak to
  // perturb any crossing: their push-out bound is ~zero) that the
  // sorted tail overflows the first pruning wave.
  st::SweepSpec spec;
  spec.scenarios.push_back(tu::chain_bump_scenario(clean, 3, 0.0, 0.6));
  const auto& t = clean.timing("inv0_2/A", st::RiseFall::kFall);
  for (int i = 0; i < 11; ++i) {
    spec.scenarios.push_back(st::make_aggressor_scenario(
        "c0_1", t.arrival, t.slew, tu::vcl013().nom_voltage,
        wv::Polarity::kFalling, 2e-9 + 5e-12 * i, 1e-7));
  }
  spec.threads = 1;
  spec.prune = st::PruneMode::kSafe;

  st::StaEngine sta(net, tu::vcl013());
  tu::constrain_chain_tree(sta, width);
  const auto r = sta.sweep(spec);
  ASSERT_EQ(r.prune_mode(), st::PruneMode::kSafe);
  const auto stats = r.prune_stats();
  // Wave 1 (8 points at 1 thread) evaluates the strong scenario plus
  // the first harmless ones; the rest are provably unbeatable.
  EXPECT_EQ(stats.evaluated, 8u);
  EXPECT_EQ(stats.pruned, 4u);
  EXPECT_GE(stats.mean_bound_gap, 0.0);

  // The strong scenario is never pruned and carries the worst point.
  EXPECT_FALSE(r.pruned(0));
  EXPECT_EQ(r.worst_point().point, 0u);

  size_t pruned_point = r.size();
  for (size_t p = 0; p < r.size(); ++p) {
    if (r.pruned(p)) pruned_point = p;
  }
  ASSERT_LT(pruned_point, r.size());
  // Pruned accessor errors name the disabling SweepSpec field and the
  // accessors that DO work — same shape as the endpoint-only errors.
  auto expect_prune_error = [](auto&& fn) {
    try {
      fn();
      FAIL() << "expected util::Error";
    } catch (const wu::Error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("SweepSpec::prune"), std::string::npos) << msg;
      EXPECT_NE(msg.find("worst_slack_bound"), std::string::npos) << msg;
    }
  };
  expect_prune_error([&] { (void)r.worst_slack(pruned_point); });
  expect_prune_error([&] { (void)r.state(pruned_point); });
  expect_prune_error([&] { (void)r.critical_endpoint(pruned_point); });
  expect_prune_error([&] { (void)r.endpoint_arrival(pruned_point, 0,
                                                    st::RiseFall::kFall); });
  // The bound itself is always available...
  EXPECT_TRUE(std::isfinite(r.worst_slack_bound(pruned_point)));
  // ...but only when pruning actually ran.
  spec.prune = st::PruneMode::kOff;
  const auto off = sta.sweep(spec);
  try {
    (void)off.worst_slack_bound(0);
    FAIL() << "expected util::Error";
  } catch (const wu::Error& e) {
    EXPECT_NE(std::string(e.what()).find("PruneMode::kSafe"),
              std::string::npos);
  }
}

TEST(StaDelta, ConeWithoutEndpointsIsReusedExactlyFromBaseline) {
  // u2 drives a dangling net: annotating it perturbs nothing any
  // endpoint can see, so under pruning the point is recorded exactly
  // from the baseline without propagation.
  nl::Netlist net;
  net.add_port("a", nl::PortDirection::kInput);
  net.add_port("y", nl::PortDirection::kOutput);
  net.add_instance({"u1", "INVX1", {{"A", "a"}, {"Y", "y"}}});
  net.add_instance({"u2", "INVX1", {{"A", "a"}, {"Y", "dead"}}});

  st::StaEngine sta(net, tu::vcl013());
  sta.set_input("a", 0.05e-9, 80e-12);
  sta.set_output_load("y", 5e-15);
  sta.set_required("y", 1e-9);
  sta.run();
  const double base_ws = sta.worst_slack();

  st::SweepSpec spec;
  spec.scenarios.push_back(st::make_aggressor_scenario(
      "dead", 0.1e-9, 80e-12, tu::vcl013().nom_voltage,
      wv::Polarity::kFalling, 0.0, 0.4));
  spec.prune = st::PruneMode::kSafe;
  spec.endpoint_only = true;  // reuse applies to summary-only results
  const auto r = sta.sweep(spec);
  ASSERT_EQ(r.size(), 1u);
  const auto stats = r.prune_stats();
  EXPECT_EQ(stats.reused, 1u);
  EXPECT_EQ(stats.evaluated, 0u);
  EXPECT_EQ(stats.pruned, 0u);
  EXPECT_EQ(r.worst_slack(0), base_ws);  // exact, bitwise
  EXPECT_FALSE(r.pruned(0));
  EXPECT_EQ(r.worst_point().slack, base_ws);
  EXPECT_THROW((void)r.state(0), wu::Error);  // endpoint-only result

  // A full-state pruned sweep must NOT reuse: the point is either
  // materialized or pruned, so worst_point() always has a full state.
  spec.endpoint_only = false;
  const auto full_pruned = sta.sweep(spec);
  EXPECT_EQ(full_pruned.prune_stats().reused, 0u);
  const auto wp = full_pruned.worst_point();
  EXPECT_EQ(wp.slack, base_ws);
  EXPECT_NO_THROW((void)full_pruned.critical_path(wp.point));

  // With pruning off the point IS fully materialized (cone is empty, so
  // the state equals a full clean propagation bitwise).
  spec.prune = st::PruneMode::kOff;
  const auto full = sta.sweep(spec);
  st::SweepSpec clean_spec;
  clean_spec.delta = false;  // independent full-propagation oracle
  const auto clean = sta.sweep(clean_spec);
  EXPECT_TRUE(tu::states_bitwise_equal(clean.state(0), full.state(0), &sta));
}

TEST(StaDelta, ScenarioBatchForwardsDeltaAndPrune) {
  const int width = 4;
  const auto net = nl::make_chain_tree(width);
  st::StaEngine clean(net, tu::vcl013());
  tu::constrain_chain_tree(clean, width);
  clean.run();
  std::vector<st::NoiseScenario> scenarios;
  for (int a = 0; a < 4; ++a) {
    scenarios.push_back(
        tu::chain_bump_scenario(clean, a % 2, (a - 2) * 15e-12, 0.4));
  }

  st::StaEngine sta_full(net, tu::vcl013());
  tu::constrain_chain_tree(sta_full, width);
  st::BatchOptions full_opt;
  full_opt.delta = false;
  st::ScenarioBatch full(sta_full, full_opt);
  for (const auto& sc : scenarios) full.add(sc);
  full.run();

  st::StaEngine sta_delta(net, tu::vcl013());
  tu::constrain_chain_tree(sta_delta, width);
  st::ScenarioBatch delta(sta_delta);  // delta defaults on
  for (const auto& sc : scenarios) delta.add(sc);
  delta.run();

  for (size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_TRUE(tu::states_bitwise_equal(full.state(i), delta.state(i),
                                         &sta_delta));
  }

  st::StaEngine sta_prune(net, tu::vcl013());
  tu::constrain_chain_tree(sta_prune, width);
  st::BatchOptions prune_opt;
  prune_opt.prune = st::PruneMode::kSafe;
  st::ScenarioBatch pruned(sta_prune, prune_opt);
  for (const auto& sc : scenarios) pruned.add(sc);
  pruned.run();
  EXPECT_EQ(pruned.result().prune_mode(), st::PruneMode::kSafe);
  EXPECT_EQ(pruned.result().prune_stats().points, scenarios.size());
  const auto wp = pruned.result().worst_point();
  EXPECT_EQ(wp.slack, full.result().worst_point().slack);
  EXPECT_EQ(wp.point, full.result().worst_point().point);
}
