// Noise-injection pipeline tests: Figure 1 testbench construction,
// golden noisy/noiseless waveform extraction, receiver-replica fidelity,
// and delay-noise behaviour vs aggressor alignment.

#include <gtest/gtest.h>

#include <cmath>

#include "noise/receiver_eval.hpp"
#include "noise/scenario.hpp"
#include "noise/testbench.hpp"
#include "util/error.hpp"
#include "wave/metrics.hpp"

namespace no = waveletic::noise;
namespace cl = waveletic::charlib;
namespace wv = waveletic::wave;
namespace wu = waveletic::util;

namespace {

/// Coarser, faster runner settings for tests.
no::RunnerOptions fast_runner() {
  no::RunnerOptions opt;
  opt.dt = 2e-12;
  return opt;
}

no::TestbenchSpec fast_config1() {
  auto spec = no::TestbenchSpec::config1();
  spec.victim_t50 = 1.5e-9;  // shorter quiet lead-in than the default
  return spec;
}

}  // namespace

TEST(Testbench, Config1BuildsThePaperTopology) {
  const cl::Pdk pdk;
  const auto tb = no::build_testbench(pdk, no::TestbenchSpec::config1());
  EXPECT_EQ(tb.in_u, "y_6");
  EXPECT_EQ(tb.out_u, "out_y");
  EXPECT_EQ(tb.aggressor_sources.size(), 1u);
  EXPECT_TRUE(tb.circuit.has_node("in_y"));
  EXPECT_TRUE(tb.circuit.has_node("x1_0"));
  EXPECT_TRUE(tb.circuit.has_node("w16_y"));
  EXPECT_TRUE(tb.circuit.has_node("w64_x1"));
  // Victim input rising -> line falls at in_u -> receiver output rises.
  EXPECT_EQ(tb.line_polarity(), wv::Polarity::kFalling);
  EXPECT_EQ(tb.output_polarity(), wv::Polarity::kRising);
}

TEST(Testbench, Config2HasTwoAggressors) {
  const cl::Pdk pdk;
  const auto tb = no::build_testbench(pdk, no::TestbenchSpec::config2());
  EXPECT_EQ(tb.aggressor_sources.size(), 2u);
  EXPECT_EQ(tb.in_u, "y_3");  // 3 segments for the 500 um lines
  EXPECT_TRUE(tb.circuit.has_node("x2_0"));
}

TEST(Testbench, AggressorStimulusDirections) {
  const cl::Pdk pdk;
  auto spec = no::TestbenchSpec::config1();
  spec.opposite_aggressor = true;
  // Victim input rises => aggressor input must fall (quiet level vdd).
  const auto quiet = no::aggressor_stimulus(pdk, spec, 0.0, true);
  EXPECT_DOUBLE_EQ(quiet->at(0.0), pdk.vdd);
  const auto active = no::aggressor_stimulus(pdk, spec, 0.0, false);
  EXPECT_DOUBLE_EQ(active->at(0.0), pdk.vdd);
  EXPECT_NEAR(active->at(10e-9), 0.0, 1e-12);

  spec.opposite_aggressor = false;
  const auto same = no::aggressor_stimulus(pdk, spec, 0.0, false);
  EXPECT_DOUBLE_EQ(same->at(0.0), 0.0);
  EXPECT_NEAR(same->at(10e-9), pdk.vdd, 1e-12);
}

TEST(NoiseRunner, NoiselessVictimIsCleanAndMonotoneThroughMid) {
  const cl::Pdk pdk;
  no::NoiseRunner runner(pdk, fast_config1(), fast_runner());
  const auto& in = runner.noiseless_in();
  // Falling transition: starts at vdd, ends near 0.
  EXPECT_NEAR(in.value(0), pdk.vdd, 0.03);
  EXPECT_NEAR(in.value(in.size() - 1), 0.0, 0.03);
  // Exactly one 50% crossing (no noise).
  EXPECT_EQ(in.crossings(0.5 * pdk.vdd).size(), 1u);
  // Output rises.
  const auto& out = runner.noiseless_out();
  EXPECT_NEAR(out.value(0), 0.0, 0.03);
  EXPECT_NEAR(out.value(out.size() - 1), pdk.vdd, 0.03);
}

TEST(NoiseRunner, AlignedAggressorDistortsVictim) {
  const cl::Pdk pdk;
  no::NoiseRunner runner(pdk, fast_config1(), fast_runner());
  const auto cw = runner.run_case(0.0);
  // The noisy waveform deviates substantially from the noiseless one.
  const double dev = wv::rms_difference(
      cw.noisy_in, runner.noiseless_in(), cw.noisy_in.t_begin() + 1e-9,
      cw.noisy_in.t_end());
  EXPECT_GT(dev, 0.05);
  // Opposite-direction noise slows the victim: arrival strictly later.
  const auto clean_arr = wv::arrival_50(runner.noiseless_in(),
                                        cw.in_polarity, pdk.vdd);
  const auto noisy_arr =
      wv::arrival_50(cw.noisy_in, cw.in_polarity, pdk.vdd);
  ASSERT_TRUE(clean_arr && noisy_arr);
  EXPECT_GT(*noisy_arr, *clean_arr + 10e-12);
  EXPECT_GT(cw.golden_gate_delay, 0.0);
}

TEST(NoiseRunner, FarAwayAggressorBarelyMatters) {
  const cl::Pdk pdk;
  auto spec = fast_config1();
  no::NoiseRunner runner(pdk, spec, fast_runner());
  // Aggressor switching ~1.2 ns before the victim: the glitch decays
  // before the victim transition.  A small residual shift remains
  // because the aggressor line now sits at the opposite rail (the
  // neighbour's driver state changes the effective coupling dynamics),
  // but it must be far smaller than the aligned-aggressor shift.
  const auto far = runner.run_case(-1.2e-9);
  const auto aligned = runner.run_case(0.0);
  const auto clean_arr = wv::arrival_50(runner.noiseless_in(),
                                        far.in_polarity, pdk.vdd);
  const auto far_arr = wv::arrival_50(far.noisy_in, far.in_polarity,
                                      pdk.vdd);
  const auto aligned_arr =
      wv::arrival_50(aligned.noisy_in, aligned.in_polarity, pdk.vdd);
  ASSERT_TRUE(clean_arr && far_arr && aligned_arr);
  const double far_shift = std::fabs(*far_arr - *clean_arr);
  const double aligned_shift = std::fabs(*aligned_arr - *clean_arr);
  EXPECT_LT(far_shift, 12e-12);
  EXPECT_GT(aligned_shift, 3.0 * far_shift);
}

TEST(NoiseRunner, SameDirectionAggressorSpeedsUp) {
  const cl::Pdk pdk;
  auto spec = fast_config1();
  spec.opposite_aggressor = false;
  no::NoiseRunner runner(pdk, spec, fast_runner());
  const auto cw = runner.run_case(0.0);
  const auto clean_arr = wv::arrival_50(runner.noiseless_in(),
                                        cw.in_polarity, pdk.vdd);
  const auto noisy_arr =
      wv::arrival_50(cw.noisy_in, cw.in_polarity, pdk.vdd);
  ASSERT_TRUE(clean_arr && noisy_arr);
  EXPECT_LT(*noisy_arr, *clean_arr - 5e-12);  // speed-up
}

TEST(NoiseRunner, TwoAggressorsHitHarderThanOne) {
  const cl::Pdk pdk;
  auto c1 = fast_config1();
  auto c2 = no::TestbenchSpec::config2();
  c2.victim_t50 = c1.victim_t50;
  no::NoiseRunner r1(pdk, c1, fast_runner());
  no::NoiseRunner r2(pdk, c2, fast_runner());
  const auto w1 = r1.run_case(0.0);
  const auto w2 = r2.run_case(0.0);
  const double shift1 =
      *wv::arrival_50(w1.noisy_in, w1.in_polarity, pdk.vdd) -
      *wv::arrival_50(r1.noiseless_in(), w1.in_polarity, pdk.vdd);
  const double shift2 =
      *wv::arrival_50(w2.noisy_in, w2.in_polarity, pdk.vdd) -
      *wv::arrival_50(r2.noiseless_in(), w2.in_polarity, pdk.vdd);
  EXPECT_GT(shift2, shift1);
}

TEST(ReceiverEval, ReplicaReproducesNoiselessGoldenOutput) {
  // Feeding the golden noiseless in_u waveform into the replica must
  // reproduce the golden noiseless out_u arrival: validates that the
  // replica carries the same receiver + fanout loading as Figure 1.
  const cl::Pdk pdk;
  no::NoiseRunner runner(pdk, fast_config1(), fast_runner());
  no::ReceiverEval::Options eopt;
  eopt.dt = 2e-12;
  no::ReceiverEval eval(pdk, eopt);
  const double est = eval.output_arrival(runner.noiseless_in(),
                                         runner.in_polarity());
  const auto golden = wv::arrival_50(runner.noiseless_out(),
                                     runner.out_polarity(), pdk.vdd);
  ASSERT_TRUE(golden.has_value());
  EXPECT_NEAR(est, *golden, 2.5e-12);
}

TEST(ReceiverEval, RampArrivalTracksRampTiming) {
  const cl::Pdk pdk;
  no::ReceiverEval eval(pdk);
  const auto ramp = wv::Ramp::from_arrival_slew(1e-9, 150e-12, pdk.vdd);
  const double a1 = eval.ramp_arrival(ramp, wv::Polarity::kFalling);
  const double a2 =
      eval.ramp_arrival(ramp.shifted(100e-12), wv::Polarity::kFalling);
  EXPECT_GT(a1, 1e-9);             // receiver adds positive delay
  EXPECT_NEAR(a2 - a1, 100e-12, 2e-12);  // time-invariance
}

TEST(Offsets, UniformCoverage) {
  const auto offs = no::NoiseRunner::offsets(5, 1e-9);
  ASSERT_EQ(offs.size(), 5u);
  EXPECT_DOUBLE_EQ(offs.front(), -0.5e-9);
  EXPECT_DOUBLE_EQ(offs.back(), 0.5e-9);
  EXPECT_DOUBLE_EQ(offs[2], 0.0);
  EXPECT_THROW((void)no::NoiseRunner::offsets(0, 1e-9), wu::Error);
}
