// Parallel + batched STA propagation: bitwise determinism of the
// level-parallel forward/backward passes across thread counts, bitwise
// equivalence of batched scenario sweeps vs. sequential looped runs,
// and Γeff-memo hit accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <vector>

#include "netlist/generators.hpp"
#include "sta/batch.hpp"
#include "sta/engine.hpp"
#include "sta/gamma_cache.hpp"
#include "sta_test_util.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "wave/ramp.hpp"

namespace lb = waveletic::liberty;
namespace nl = waveletic::netlist;
namespace st = waveletic::sta;
namespace tu = waveletic::statest;
namespace wu = waveletic::util;
namespace wv = waveletic::wave;

namespace {

// Shared scaffolding lives in sta_test_util.hpp.
const lb::Library& lib() { return tu::vcl013(); }

nl::Netlist wide_netlist(int width) { return nl::make_chain_tree(width); }

void constrain(st::StaEngine& sta, int width) {
  tu::constrain_chain_tree(sta, width);
}

void expect_states_identical(const st::StaEngine& sta,
                             const st::TimingState& a,
                             const st::TimingState& b) {
  EXPECT_TRUE(tu::states_bitwise_equal(a, b, &sta));
}

st::NoiseScenario bump_scenario(const st::StaEngine& clean, int chain,
                                double alignment, double strength) {
  return tu::chain_bump_scenario(clean, chain, alignment, strength);
}

}  // namespace

TEST(StaParallel, LevelsCoverAllVerticesOnce) {
  const auto net = wide_netlist(8);
  st::StaEngine sta(net, lib());
  size_t total = 0;
  for (const auto& level : sta.levels()) total += level.size();
  EXPECT_EQ(total, sta.vertex_count());
  EXPECT_GT(sta.levels().size(), 3u);  // chains are at least 3 gates deep
}

TEST(StaParallel, MultiThreadBitwiseIdenticalToSingleThread) {
  const int width = 12;
  const auto net = wide_netlist(width);

  st::StaEngine sta1(net, lib());
  constrain(sta1, width);
  sta1.set_threads(1);
  sta1.run();

  for (const int threads : {2, 4, 8}) {
    st::StaEngine stan(net, lib());
    constrain(stan, width);
    // A noisy annotation makes the parallel path exercise Γeff too.
    const auto& n0 = sta1.timing("inv0_2/A", st::RiseFall::kFall);
    const auto ramp =
        wv::Ramp::from_arrival_slew(n0.arrival, n0.slew, lib().nom_voltage);
    stan.annotate_noisy_net("c0_1",
                            ramp.denormalized(wv::Polarity::kFalling, 256),
                            wv::Polarity::kFalling);
    st::StaEngine sta1n(net, lib());
    constrain(sta1n, width);
    sta1n.annotate_noisy_net("c0_1",
                             ramp.denormalized(wv::Polarity::kFalling, 256),
                             wv::Polarity::kFalling);
    sta1n.set_threads(1);
    sta1n.run();
    stan.set_threads(threads);
    stan.run();

    for (int rf = 0; rf < 2; ++rf) {
      const auto r = static_cast<st::RiseFall>(rf);
      EXPECT_EQ(sta1n.timing("y", r).arrival, stan.timing("y", r).arrival)
          << "threads=" << threads;
      EXPECT_EQ(sta1n.timing("y", r).slew, stan.timing("y", r).slew);
      EXPECT_EQ(sta1n.timing("y", r).required, stan.timing("y", r).required);
    }
    EXPECT_EQ(sta1n.worst_slack(), stan.worst_slack());
  }
}

TEST(StaParallel, BatchedBitwiseIdenticalToLoopedRuns) {
  const int width = 6;
  const auto net = wide_netlist(width);

  // Clean run provides the victim ramps the scenarios perturb.
  st::StaEngine clean(net, lib());
  constrain(clean, width);
  clean.run();

  // 24 scenarios: aggressor alignment × strength grid on two nets.
  std::vector<st::NoiseScenario> scenarios;
  for (int chain : {0, 3}) {
    for (int a = 0; a < 4; ++a) {
      for (int s = 0; s < 3; ++s) {
        scenarios.push_back(bump_scenario(clean, chain,
                                          (a - 2) * 20e-12,
                                          0.25 + 0.2 * s));
      }
    }
  }

  // Looped baseline: one engine, re-annotated and re-run per scenario,
  // single-threaded, no cache.
  std::vector<double> looped_arrival, looped_slack;
  for (const auto& sc : scenarios) {
    st::StaEngine sta(net, lib());
    constrain(sta, width);
    for (const auto& e : sc.entries) {
      sta.annotate_noisy_net(e.net, e.annotation.waveform,
                             e.annotation.polarity);
    }
    sta.run();
    looped_arrival.push_back(sta.timing("y", st::RiseFall::kFall).arrival);
    looped_slack.push_back(sta.worst_slack());
  }

  // Batched: one levelized pass, 4 threads, shared Γeff cache.
  st::StaEngine sta(net, lib());
  constrain(sta, width);
  st::BatchOptions opt;
  opt.threads = 4;
  st::ScenarioBatch batch(sta, opt);
  for (auto& sc : scenarios) batch.add(sc);
  batch.run();

  for (size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(batch.timing(i, "y", st::RiseFall::kFall).arrival,
              looped_arrival[i])
        << "scenario " << i << " (" << batch.scenario(i).name << ")";
    EXPECT_EQ(batch.worst_slack(i), looped_slack[i]) << "scenario " << i;
  }
}

TEST(StaParallel, GammaCacheCountsHitsForRepeatedScenarios) {
  const int width = 4;
  const auto net = wide_netlist(width);
  st::StaEngine clean(net, lib());
  constrain(clean, width);
  clean.run();

  // The same annotation repeated across all scenarios: the fit must be
  // computed once per (edge, rf) and hit thereafter.
  const auto sc = bump_scenario(clean, 0, 10e-12, 0.4);
  const int copies = 16;
  st::StaEngine sta(net, lib());
  constrain(sta, width);
  st::BatchOptions opt;
  opt.threads = 2;
  st::ScenarioBatch batch(sta, opt);
  for (int i = 0; i < copies; ++i) batch.add(sc);
  batch.run();

  const auto stats = batch.cache_stats();
  // One noisy sink, one matching transition → exactly one lookup per
  // scenario, deterministically.
  EXPECT_EQ(stats.hits + stats.misses, static_cast<uint64_t>(copies));
  // There is one distinct key; concurrent first lookups may each miss
  // before the first insert lands, so allow up to `threads` misses.
  EXPECT_GE(stats.misses, 1u);
  EXPECT_LE(stats.misses, 2u);
  EXPECT_GE(stats.hits, static_cast<uint64_t>(copies) - 2);

  // And hits do not change results: scenario 0 == scenario N-1 bitwise.
  expect_states_identical(sta, batch.state(0), batch.state(copies - 1));
}

TEST(StaParallel, CacheOffMatchesCacheOnBitwise) {
  const int width = 4;
  const auto net = wide_netlist(width);
  st::StaEngine clean(net, lib());
  constrain(clean, width);
  clean.run();

  std::vector<st::NoiseScenario> scenarios;
  for (int a = 0; a < 4; ++a) {
    scenarios.push_back(bump_scenario(clean, 1, a * 15e-12, 0.5));
  }

  st::StaEngine sta_on(net, lib());
  constrain(sta_on, width);
  st::BatchOptions on;
  on.threads = 2;
  on.share_gamma_cache = true;
  st::ScenarioBatch batch_on(sta_on, on);
  for (auto& s : scenarios) batch_on.add(s);
  batch_on.run();

  st::StaEngine sta_off(net, lib());
  constrain(sta_off, width);
  st::BatchOptions off;
  off.threads = 1;
  off.share_gamma_cache = false;
  st::ScenarioBatch batch_off(sta_off, off);
  for (auto& s : scenarios) batch_off.add(s);
  batch_off.run();

  EXPECT_EQ(batch_off.cache_stats().hits + batch_off.cache_stats().misses,
            0u);
  for (size_t i = 0; i < scenarios.size(); ++i) {
    expect_states_identical(sta_on, batch_on.state(i), batch_off.state(i));
  }
}

TEST(StaParallel, ThreadPoolRunsEveryIndexOnceAndPropagatesErrors) {
  wu::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<int> counts(1000, 0);
  pool.parallel_for(counts.size(), [&](size_t i) { counts[i]++; });
  for (const int c : counts) EXPECT_EQ(c, 1);

  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](size_t i) {
                          if (i == 57) throw wu::Error("boom");
                        }),
      wu::Error);
  // Pool stays usable after an exception.
  std::atomic<int> total{0};
  pool.parallel_for(100, [&](size_t) { total++; });
  EXPECT_EQ(total.load(), 100);
}

TEST(StaParallel, EngineAnnotationsOverlayIntoBatchScenarios) {
  const int width = 4;
  const auto net = wide_netlist(width);
  st::StaEngine clean(net, lib());
  constrain(clean, width);
  clean.run();

  const auto sc0 = bump_scenario(clean, 0, 10e-12, 0.5);
  const auto sc1 = bump_scenario(clean, 1, -15e-12, 0.4);

  // Engine-level annotation on chain 1, scenario annotation on chain 0:
  // the batch must apply BOTH (engine annotations overlay into every
  // scenario; the scenario wins only on nets both touch).
  st::StaEngine sta(net, lib());
  constrain(sta, width);
  const auto& ann1 = sc1.entries.front().annotation;
  sta.annotate_noisy_net(sc1.entries.front().net, ann1.waveform,
                         ann1.polarity);
  st::ScenarioBatch batch(sta);
  batch.add(sc0);
  batch.run();

  // Reference: one engine run with both annotations applied.
  st::StaEngine both(net, lib());
  constrain(both, width);
  both.annotate_noisy_net(sc1.entries.front().net, ann1.waveform,
                          ann1.polarity);
  const auto& ann0 = sc0.entries.front().annotation;
  both.annotate_noisy_net(sc0.entries.front().net, ann0.waveform,
                          ann0.polarity);
  both.run();

  EXPECT_EQ(batch.timing(0, "y", st::RiseFall::kFall).arrival,
            both.timing("y", st::RiseFall::kFall).arrival);
  EXPECT_EQ(batch.worst_slack(0), both.worst_slack());

  // clear_noisy_nets drops the engine-level annotation: the next run
  // matches the clean analysis again.
  both.clear_noisy_nets();
  both.run();
  EXPECT_EQ(both.timing("y", st::RiseFall::kFall).arrival,
            clean.timing("y", st::RiseFall::kFall).arrival);
}

TEST(StaParallel, EmptyBatchThrows) {
  const auto net = wide_netlist(2);
  st::StaEngine sta(net, lib());
  constrain(sta, 2);
  st::ScenarioBatch batch(sta);
  EXPECT_THROW(batch.run(), wu::Error);
  st::NoiseScenario sc;
  batch.add(sc);  // scenario with no annotations = clean run
  batch.run();
  sta.run();
  EXPECT_EQ(batch.timing(0, "y", st::RiseFall::kFall).arrival,
            sta.timing("y", st::RiseFall::kFall).arrival);
}
