/// \file test_sta_compound.cpp
/// Randomized property layer over the compound-aggressor scenario
/// funnel: event enumeration vs explicit subset listing over random
/// space shapes, decode/encode roundtrips, bitwise identity of the
/// k = 1 space against a reference reimplementation of the legacy
/// single-aggressor funnel, superposed compound scenarios against
/// hand-built NoiseScenarios (Gaussian and coupled-line shapes), the
/// set-level correlation stage against a manual replay of the pairwise
/// lift, the streamed-vs-eager compound oracle across chunk sizes and
/// thread counts, per-corner re-windowing against its manual
/// composition, and the million-point bounded-memory guarantee.

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "interconnect/coupled.hpp"
#include "sta/scengen.hpp"
#include "sta_test_util.hpp"
#include "util/rng.hpp"
#include "wave/ramp.hpp"

namespace waveletic {
namespace {

using sta::CorrelationRule;
using sta::GeneratedSweepSpec;
using sta::GenStats;
using sta::NoiseScenario;
using sta::PruneMode;
using sta::ScenarioGenerator;
using sta::ScenarioPair;
using sta::ScenarioSpace;
using sta::StructuralCorrelationRule;
using statest::vcl013;

uint64_t bits(double x) { return std::bit_cast<uint64_t>(x); }

/// Reference binomial for the property checks (small n only).
uint64_t choose_ref(uint64_t n, uint64_t k) {
  if (k > n) return 0;
  uint64_t r = 1;
  for (uint64_t i = 1; i <= k; ++i) r = r * (n - k + i) / i;
  return r;
}

/// A space of `n` pairs whose every candidate is window-feasible.
ScenarioSpace wide_space(int n, size_t alignments, size_t strengths,
                         int max_aggressors) {
  ScenarioSpace space;
  for (int p = 0; p < n; ++p) {
    ScenarioPair pair;
    pair.victim_net = p;
    pair.aggressor_net = n + p;
    pair.victim_name = "v" + std::to_string(p);
    pair.aggressor_name = "g" + std::to_string(p);
    pair.victim_arrival = 1e-9;
    pair.victim_slew = 100e-12;
    pair.aggressor_window_lo = 0.0;
    pair.aggressor_window_hi = 2e-9;
    space.pairs.push_back(pair);
  }
  for (size_t a = 0; a < alignments; ++a) {
    space.alignments.push_back(-20e-12 + 10e-12 * static_cast<double>(a));
  }
  for (size_t s = 0; s < strengths; ++s) {
    space.strengths.push_back(0.1 + 0.05 * static_cast<double>(s));
  }
  space.max_aggressors = max_aggressors;
  return space;
}

/// Deterministic pseudo-random pairwise rule: rejects roughly 1/8 of
/// the net pairs, keyed by (salt, victim, aggressor).
class HashPairRule : public CorrelationRule {
 public:
  explicit HashPairRule(uint64_t salt) : salt_(salt) {}
  [[nodiscard]] const char* name() const noexcept override { return "hash"; }
  [[nodiscard]] bool can_switch_together(int32_t victim_net,
                                         int32_t aggressor_net)
      const override {
    uint64_t x = salt_ ^
                 (static_cast<uint64_t>(static_cast<uint32_t>(victim_net))
                  << 32) ^
                 static_cast<uint32_t>(aggressor_net);
    x *= 0x9E3779B97F4A7C15ull;
    x ^= x >> 29;
    return (x & 7) != 0;
  }

 private:
  uint64_t salt_;
};

/// HashPairRule plus a genuinely set-level constraint: at most
/// `max_set` simultaneous aggressors.
class SetBudgetRule final : public HashPairRule {
 public:
  SetBudgetRule(uint64_t salt, size_t max_set)
      : HashPairRule(salt), max_set_(max_set) {}
  [[nodiscard]] bool can_switch_set(
      std::span<const int32_t> victim_nets,
      std::span<const int32_t> /*aggressor_nets*/) const override {
    return victim_nets.size() <= max_set_;
  }

 private:
  size_t max_set_;
};

TEST(Compound, EventEnumerationMatchesExplicitSubsetsOnRandomShapes) {
  util::Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 24; ++trial) {
    const int n = 1 + static_cast<int>(rng.next() % 10);
    const int k_max = 1 + static_cast<int>(rng.next() % 4);
    const auto space = wide_space(n, 1 + rng.next() % 4, 1 + rng.next() % 3,
                                  k_max);
    // Explicitly list every k-subset, singletons first, each k-block in
    // lexicographic combination order — the documented event order.
    std::vector<std::vector<uint32_t>> expected;
    const int k_limit = std::min(k_max, n);
    for (int k = 1; k <= k_limit; ++k) {
      std::vector<uint32_t> subset(static_cast<size_t>(k));
      const auto emit = [&](auto&& self, int slot, uint32_t from) -> void {
        if (slot == k) {
          expected.push_back(subset);
          return;
        }
        for (uint32_t m = from; m < static_cast<uint32_t>(n); ++m) {
          subset[static_cast<size_t>(slot)] = m;
          self(self, slot + 1, m + 1);
        }
      };
      emit(emit, 0, 0);
    }
    uint64_t count = 0;
    for (int k = 1; k <= k_limit; ++k) {
      count += choose_ref(static_cast<uint64_t>(n), static_cast<uint64_t>(k));
    }
    ASSERT_EQ(expected.size(), count);
    ASSERT_EQ(space.num_events(), count) << "n=" << n << " k=" << k_max;
    for (uint64_t e = 0; e < count; ++e) {
      EXPECT_EQ(space.event_members(e), expected[static_cast<size_t>(e)])
          << "n=" << n << " k=" << k_max << " event=" << e;
    }
    EXPECT_THROW((void)space.event_members(count), util::Error);
  }
}

TEST(Compound, DecodeEncodeRoundtripOnRandomShapes) {
  util::Rng rng(0xDEC0DE);
  for (int trial = 0; trial < 24; ++trial) {
    const auto space =
        wide_space(1 + static_cast<int>(rng.next() % 9),
                   1 + rng.next() % 5, 1 + rng.next() % 4,
                   1 + static_cast<int>(rng.next() % 4));
    const uint64_t total = space.size();
    ASSERT_EQ(total, space.num_events() * space.alignments.size() *
                         space.strengths.size());
    for (int probe = 0; probe < 32; ++probe) {
      const uint64_t i = probe == 0 ? 0
                         : probe == 1 ? total - 1
                                      : rng.next() % total;
      const auto c = space.decode(i);
      EXPECT_LT(c.pair, space.num_events());
      EXPECT_LT(c.alignment, space.alignments.size());
      EXPECT_LT(c.strength, space.strengths.size());
      EXPECT_EQ(space.encode(c), i);
    }
    EXPECT_THROW((void)space.decode(total), util::Error);
  }
}

TEST(Compound, SingletonSpaceBitwiseMatchesLegacyReferenceFunnel) {
  // The k = 1 space must reproduce the historical single-aggressor
  // generator bit for bit: same survivor stream, same funnel counters,
  // same materialized waveforms, same worst point.  The reference here
  // is an independent reimplementation of the legacy funnel loop.
  auto f = statest::random_engine(41);
  f.sta->run();
  const auto drives = sta::make_drives_predicate(vcl013());
  const StructuralCorrelationRule rule(*f.netlist, drives);
  auto candidates = interconnect::infer_coupling_candidates(*f.netlist);
  if (candidates.size() > 40) candidates.resize(40);
  const auto space = sta::make_scenario_space(
      *f.sta, *f.netlist, candidates, drives,
      {-30e-12, 0.0, 20e-12, 50e-12}, {0.1, 0.25, 0.4});
  ASSERT_FALSE(space.pairs.empty());
  ASSERT_EQ(space.max_aggressors, 1);  // the compound default stays legacy
  ASSERT_EQ(space.num_events(), space.pairs.size());

  // Reference funnel: lexicographic (pair, alignment, strength) with
  // whole-strength-block kills, window stage before correlation stage.
  ScenarioGenerator probe(space);  // window oracle only; never drained
  GenStats expected;
  std::vector<uint64_t> exp_survivors;
  const uint64_t n_s = space.strengths.size();
  for (uint32_t p = 0; p < space.pairs.size(); ++p) {
    for (uint32_t a = 0; a < space.alignments.size(); ++a) {
      expected.generated += n_s;
      if (!probe.window_feasible(p, a)) {
        expected.window_killed += n_s;
        continue;
      }
      if (!rule.can_switch_together(space.pairs[p].victim_net,
                                    space.pairs[p].aggressor_net)) {
        expected.correlation_killed += n_s;
        continue;
      }
      for (uint32_t s = 0; s < n_s; ++s) {
        exp_survivors.push_back(space.encode({p, a, s}));
      }
    }
  }
  ASSERT_FALSE(exp_survivors.empty());

  ScenarioGenerator gen(space, &rule);
  std::vector<NoiseScenario> scenarios;
  std::vector<uint64_t> got_survivors;
  while (const auto c = gen.next()) {
    got_survivors.push_back(c->index);
    scenarios.push_back(gen.materialize(*c));
  }
  EXPECT_EQ(got_survivors, exp_survivors);
  EXPECT_EQ(gen.stats().generated, expected.generated);
  EXPECT_EQ(gen.stats().window_killed, expected.window_killed);
  EXPECT_EQ(gen.stats().correlation_killed, expected.correlation_killed);
  EXPECT_EQ(gen.stats().set_killed, 0u);

  // Each survivor materializes exactly the legacy waveform (and name).
  for (size_t i = 0; i < got_survivors.size(); ++i) {
    const auto c = space.decode(got_survivors[i]);
    const auto& pair = space.pairs[c.pair];
    const auto legacy = sta::make_aggressor_scenario(
        pair.victim_name, pair.victim_arrival, pair.victim_slew, space.vdd,
        space.polarity, space.alignments[c.alignment],
        space.strengths[c.strength] * pair.coupling_scale,
        space.waveform_samples);
    ASSERT_EQ(scenarios[i].name, legacy.name);
    ASSERT_EQ(scenarios[i].entries.size(), legacy.entries.size());
    const auto& got = scenarios[i].entries[0].annotation;
    const auto& want = legacy.entries[0].annotation;
    ASSERT_EQ(got.waveform.size(), want.waveform.size());
    for (size_t n = 0; n < want.waveform.size(); ++n) {
      EXPECT_EQ(bits(got.waveform.time(n)), bits(want.waveform.time(n)));
      EXPECT_EQ(bits(got.waveform.value(n)), bits(want.waveform.value(n)));
    }
    EXPECT_EQ(got.key, want.key);
  }

  // And the streamed sweep agrees with eagerly sweeping the legacy
  // scenarios: same worst slack, point and tie-break.
  GeneratedSweepSpec gspec;
  gspec.space = space;
  gspec.correlation = &rule;
  gspec.threads = 2;
  gspec.gen_chunk = 16;
  gspec.prune = PruneMode::kOff;
  const auto gr = f.sta->sweep(gspec);
  sta::SweepSpec espec;
  espec.scenarios = scenarios;
  espec.endpoint_only = true;
  espec.threads = 2;
  const auto er = f.sta->sweep(espec);
  const auto ewp = er.worst_point();
  EXPECT_EQ(bits(gr.worst_slack()), bits(ewp.slack));
  EXPECT_EQ(gr.worst_point().candidate, exp_survivors[ewp.scenario]);
  EXPECT_EQ(gr.worst_point().scenario_name, er.scenario_name(ewp.scenario));
}

TEST(Compound, SuperposedScenarioEqualsHandBuiltGaussian) {
  // Three pairs, two of which share a victim net — the compound
  // scenario must group them into one entry per distinct victim, in
  // ascending-member first-occurrence order, superposing both bumps on
  // the shared victim's clean ramp.
  ScenarioSpace space = wide_space(3, 2, 2, 3);
  space.pairs[2].victim_net = space.pairs[0].victim_net;
  space.pairs[2].victim_name = space.pairs[0].victim_name;
  space.pairs[2].victim_arrival = space.pairs[0].victim_arrival + 7e-12;
  space.pairs[1].coupling_scale = 1.4;
  space.pairs[2].coupling_scale = 0.8;

  // Event {0, 1, 2} is the last event: 3 singletons + 3 pairs + 1.
  ASSERT_EQ(space.num_events(), 7u);
  const ScenarioSpace::Coordinates coords{6, 1, 0};
  ScenarioGenerator gen(space);
  const ScenarioGenerator::Candidate cand{space.encode(coords), coords.pair,
                                          coords.alignment, coords.strength};
  const NoiseScenario got = gen.materialize(cand);

  const double alignment = space.alignments[1];
  const double strength = space.strengths[0];
  const double sign = 1.0;  // falling victim
  NoiseScenario want;
  {
    // Victim group of members {0, 2} (anchor: member 0), then {1}.
    for (const auto& members : {std::vector<uint32_t>{0, 2},
                                std::vector<uint32_t>{1}}) {
      const auto& anchor = space.pairs[members[0]];
      const auto clean =
          wave::Ramp::from_arrival_slew(anchor.victim_arrival,
                                        anchor.victim_slew, space.vdd)
              .denormalized(space.polarity, space.waveform_samples);
      std::vector<double> t(clean.times().begin(), clean.times().end());
      std::vector<double> v(clean.values().begin(), clean.values().end());
      for (const uint32_t m : members) {
        const auto& pair = space.pairs[m];
        const double center = pair.victim_arrival + alignment;
        const double sigma = 0.5 * pair.victim_slew;
        const double amp = strength * pair.coupling_scale;
        for (size_t n = 0; n < t.size(); ++n) {
          v[n] += sign * amp *
                  std::exp(-std::pow((t[n] - center) / sigma, 2.0));
        }
      }
      want.annotate(anchor.victim_name,
                    wave::Waveform(std::move(t), std::move(v)),
                    space.polarity);
    }
  }
  ASSERT_EQ(got.entries.size(), 2u);
  for (size_t e = 0; e < 2; ++e) {
    EXPECT_EQ(got.entries[e].net, want.entries[e].net);
    const auto& gw = got.entries[e].annotation.waveform;
    const auto& ww = want.entries[e].annotation.waveform;
    ASSERT_EQ(gw.size(), ww.size());
    for (size_t n = 0; n < ww.size(); ++n) {
      EXPECT_EQ(bits(gw.time(n)), bits(ww.time(n)));
      EXPECT_EQ(bits(gw.value(n)), bits(ww.value(n)));
    }
    EXPECT_EQ(got.entries[e].annotation.key, want.entries[e].annotation.key);
  }
  // Name: '+'-joined member descriptors.
  std::string name;
  for (const uint32_t m : {0u, 1u, 2u}) {
    const auto& pair = space.pairs[m];
    std::ostringstream part;
    part << pair.victim_name << "@align=" << alignment * 1e12
         << "ps,strength=" << strength * pair.coupling_scale << "V";
    name += (m != 0 ? "+" : "") + part.str();
  }
  EXPECT_EQ(got.name, name);
}

TEST(Compound, SuperposedScenarioEqualsHandBuiltCoupledLine) {
  ScenarioSpace space = wide_space(2, 1, 2, 2);
  space.pairs[1].coupling_scale = 1.3;
  space.pairs[1].victim_slew = 80e-12;
  space.bump_shape = sta::BumpShape::kCoupledLine;
  ASSERT_STREQ(sta::to_string(space.bump_shape), "coupled_line");
  ASSERT_STREQ(sta::to_string(sta::BumpShape::kGaussian), "gaussian");

  // Event {0, 1} = index 2 (after the two singletons).
  const ScenarioSpace::Coordinates coords{2, 0, 1};
  ScenarioGenerator gen(space);
  const ScenarioGenerator::Candidate cand{space.encode(coords), coords.pair,
                                          coords.alignment, coords.strength};
  const NoiseScenario got = gen.materialize(cand);
  ASSERT_EQ(got.entries.size(), 2u);

  const double alignment = space.alignments[0];
  const double strength = space.strengths[1];
  for (uint32_t m = 0; m < 2; ++m) {
    const auto& pair = space.pairs[m];
    // The generator's testbench: the space's template with the coupling
    // cap scaled per pair and the ramp transition set to the victim
    // slew; unit shape scaled by sign × strength × coupling_scale.
    interconnect::CoupledLinePair bench = space.coupled_pair;
    bench.cm_total *= pair.coupling_scale;
    interconnect::CoupledBumpOptions opts = space.coupled_bump;
    opts.transition = pair.victim_slew;
    const auto unit = interconnect::coupled_bump_shape(bench, opts);
    // Scale-then-sample, mirroring the generator's cached scaled bump
    // (sampling the scaled waveform rounds differently from scaling
    // the sampled value).
    const double amp = strength * pair.coupling_scale;  // falling: sign +1
    std::vector<double> bt(unit.times().begin(), unit.times().end());
    std::vector<double> bv(unit.values().begin(), unit.values().end());
    for (auto& x : bv) x *= amp;
    const wave::Waveform scaled(std::move(bt), std::move(bv));
    const auto clean =
        wave::Ramp::from_arrival_slew(pair.victim_arrival, pair.victim_slew,
                                      space.vdd)
            .denormalized(space.polarity, space.waveform_samples);
    const double center = pair.victim_arrival + alignment;
    const auto& gw = got.entries[m].annotation.waveform;
    ASSERT_EQ(gw.size(), clean.size());
    for (size_t n = 0; n < clean.size(); ++n) {
      const double bump = scaled.at(clean.time(n) - center);
      EXPECT_EQ(bits(gw.value(n)), bits(clean.value(n) + bump))
          << "member " << m << " sample " << n;
    }
  }
}

TEST(Compound, SetStageOnlyFiresAfterPairwiseLiftPasses) {
  // Property: without a set-level rule, set_killed stays zero; with
  // one, exactly the events whose every member and member pair survive
  // the pairwise lift — and that the set rule rejects — land in
  // set_killed.  Verified against a manual replay of the lift.
  util::Rng rng(0x5E7F11E5);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 2 + static_cast<int>(rng.next() % 6);
    ScenarioSpace space = wide_space(n, 1 + rng.next() % 3,
                                     1 + rng.next() % 3,
                                     2 + static_cast<int>(rng.next() % 2));
    // Random net aliasing so the structural member checks fire too.
    for (auto& pair : space.pairs) {
      pair.victim_net = static_cast<int32_t>(rng.next() % (n + 2));
      pair.aggressor_net = static_cast<int32_t>(rng.next() % (n + 2));
    }
    const uint64_t salt = rng.next();
    const HashPairRule pairwise(salt);
    const SetBudgetRule budget(salt, 1);  // kills every compound set

    // Manual replay of the funnel verdict per event.
    const auto lift_passes = [&](const std::vector<uint32_t>& members) {
      for (const uint32_t m : members) {
        if (!pairwise.can_switch_together(space.pairs[m].victim_net,
                                          space.pairs[m].aggressor_net)) {
          return false;
        }
      }
      for (size_t i = 0; i + 1 < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          const auto& a = space.pairs[members[i]];
          const auto& b = space.pairs[members[j]];
          if (a.aggressor_net == b.aggressor_net ||
              a.aggressor_net == b.victim_net ||
              b.aggressor_net == a.victim_net) {
            return false;
          }
          if (!pairwise.can_switch_together(a.victim_net, b.aggressor_net) ||
              !pairwise.can_switch_together(b.victim_net, a.aggressor_net) ||
              !pairwise.can_switch_together(a.aggressor_net,
                                            b.aggressor_net)) {
            return false;
          }
        }
      }
      return true;
    };
    const uint64_t cell =
        space.alignments.size() * space.strengths.size();
    GenStats expected;  // per-rule expected counters, pairwise rule
    uint64_t expected_set_killed_with_budget = 0;
    for (uint64_t e = 0; e < space.num_events(); ++e) {
      const auto members = space.event_members(e);
      expected.generated += cell;
      if (!lift_passes(members)) {
        expected.correlation_killed += cell;
      } else if (members.size() > 1) {
        expected_set_killed_with_budget += cell;
      }
    }

    // Pairwise rule only: the set stage never fires.
    ScenarioGenerator plain(space, &pairwise);
    uint64_t plain_survivors = 0;
    while (plain.next()) ++plain_survivors;
    EXPECT_EQ(plain.stats().set_killed, 0u);
    EXPECT_EQ(plain.stats().correlation_killed,
              expected.correlation_killed);
    EXPECT_EQ(plain.stats().generated, expected.generated);
    EXPECT_EQ(plain_survivors,
              expected.generated - expected.correlation_killed);

    // Budget rule: compound lift survivors move to set_killed, nothing
    // else changes — the set stage never steals from the lift.
    ScenarioGenerator budgeted(space, &budget);
    uint64_t budget_survivors = 0;
    while (budgeted.next()) ++budget_survivors;
    EXPECT_EQ(budgeted.stats().correlation_killed,
              expected.correlation_killed);
    EXPECT_EQ(budgeted.stats().set_killed,
              expected_set_killed_with_budget);
    EXPECT_EQ(budget_survivors, plain_survivors -
                                    expected_set_killed_with_budget);
  }
}

TEST(Compound, StreamedVsEagerBitwiseAcrossChunksAndThreads) {
  // The oracle: a ≤ 5k-candidate compound space, streamed through the
  // generated sweep with every (gen_chunk, threads) combination, must
  // reproduce the eager enumeration of the full surviving cross
  // product bitwise — worst slack, worst point and tie-breaks.
  auto f = statest::random_engine(31);
  f.sta->run();
  const auto drives = sta::make_drives_predicate(vcl013());
  const StructuralCorrelationRule rule(*f.netlist, drives);
  auto candidates = interconnect::infer_coupling_candidates(*f.netlist);
  if (candidates.size() > 18) candidates.resize(18);
  ScenarioSpace space = sta::make_scenario_space(
      *f.sta, *f.netlist, candidates, drives, {-25e-12, 0.0, 30e-12, 55e-12},
      {0.12, 0.28, 0.4});
  ASSERT_GE(space.pairs.size(), 6u);
  space.max_aggressors = 2;
  ASSERT_LE(space.size(), 5000u);

  const std::vector<sta::Corner> corners = {
      sta::Corner{}, sta::Corner{"slow", 1.05, 1.02, 1.1}};

  // Eager twin: drain the generator once, sweep all survivors at once.
  std::vector<uint64_t> survivors;
  sta::SweepSpec espec;
  espec.corners = corners;
  espec.endpoint_only = true;
  espec.threads = 4;
  {
    ScenarioGenerator gen(space, &rule);
    while (const auto c = gen.next()) {
      espec.scenarios.push_back(gen.materialize(*c));
      survivors.push_back(c->index);
    }
  }
  ASSERT_FALSE(survivors.empty());
  // The compound region contributes real survivors, not just k = 1.
  ASSERT_GT(survivors.back(),
            space.pairs.size() * space.alignments.size() *
                space.strengths.size());
  const auto er = f.sta->sweep(espec);
  const auto ewp = er.worst_point();

  for (const size_t gen_chunk : {size_t{7}, size_t{64}, size_t{1024}}) {
    for (const int threads : {1, 2, 4}) {
      GeneratedSweepSpec gspec;
      gspec.space = space;
      gspec.correlation = &rule;
      gspec.corners = corners;
      gspec.threads = threads;
      gspec.gen_chunk = gen_chunk;
      gspec.prune = PruneMode::kOff;
      const auto gr = f.sta->sweep(gspec);
      EXPECT_EQ(bits(gr.worst_slack()), bits(ewp.slack))
          << "chunk=" << gen_chunk << " threads=" << threads;
      EXPECT_EQ(gr.worst_point().candidate, survivors[ewp.scenario]);
      EXPECT_EQ(gr.worst_point().corner, ewp.corner);
      EXPECT_EQ(gr.worst_point().scenario_name,
                er.scenario_name(ewp.scenario));
      EXPECT_LE(gr.gen_stats().peak_resident_scenarios, gen_chunk);
      // Every surviving (candidate, corner) slack agrees bitwise.
      ASSERT_EQ(gr.points().size(), er.size());
      for (const auto& rec : gr.points()) {
        const auto it = std::lower_bound(survivors.begin(), survivors.end(),
                                         rec.candidate);
        ASSERT_TRUE(it != survivors.end() && *it == rec.candidate);
        const auto s =
            static_cast<size_t>(std::distance(survivors.begin(), it));
        EXPECT_EQ(bits(rec.worst_slack),
                  bits(er.worst_slack(er.point(rec.corner, s))));
      }
      // Funnel identity, now with the set stage in the sum.
      const auto& g = gr.gen_stats();
      EXPECT_TRUE(g.check());
      EXPECT_EQ(g.generated, corners.size() * space.size());
    }
  }

  // Pruning on stays exact too (worst point only; prune kills records).
  GeneratedSweepSpec pruned;
  pruned.space = space;
  pruned.correlation = &rule;
  pruned.corners = corners;
  pruned.threads = 4;
  pruned.gen_chunk = 64;
  pruned.prune = PruneMode::kSafe;
  const auto pr = f.sta->sweep(pruned);
  EXPECT_EQ(bits(pr.worst_slack()), bits(ewp.slack));
  EXPECT_EQ(pr.worst_point().candidate, survivors[ewp.scenario]);
  EXPECT_TRUE(pr.gen_stats().check());
}

TEST(Compound, PerCornerWindowsMatchManualComposition) {
  auto f = statest::random_engine(53);
  f.sta->run();
  const auto drives = sta::make_drives_predicate(vcl013());
  const StructuralCorrelationRule rule(*f.netlist, drives);
  auto candidates = interconnect::infer_coupling_candidates(*f.netlist);
  if (candidates.size() > 24) candidates.resize(24);
  ScenarioSpace space = sta::make_scenario_space(
      *f.sta, *f.netlist, candidates, drives, {-20e-12, 0.0, 40e-12},
      {0.15, 0.3});
  ASSERT_FALSE(space.pairs.empty());
  space.max_aggressors = 2;

  // Identity corner: re-windowing reproduces the engine-baseline
  // windows bitwise (x · 1.0 == x).
  const auto identity =
      sta::rewindow_scenario_space(*f.sta, sta::Corner{}, space);
  ASSERT_EQ(identity.pairs.size(), space.pairs.size());
  for (size_t p = 0; p < space.pairs.size(); ++p) {
    EXPECT_EQ(bits(identity.pairs[p].victim_arrival),
              bits(space.pairs[p].victim_arrival));
    EXPECT_EQ(bits(identity.pairs[p].victim_slew),
              bits(space.pairs[p].victim_slew));
    EXPECT_EQ(bits(identity.pairs[p].aggressor_window_lo),
              bits(space.pairs[p].aggressor_window_lo));
    EXPECT_EQ(bits(identity.pairs[p].aggressor_window_hi),
              bits(space.pairs[p].aggressor_window_hi));
  }
  // Hand-built pairs (no stored pins) keep their windows verbatim.
  {
    ScenarioSpace hand = wide_space(2, 2, 2, 1);
    const auto kept =
        sta::rewindow_scenario_space(*f.sta, sta::Corner{}, hand);
    for (size_t p = 0; p < hand.pairs.size(); ++p) {
      EXPECT_EQ(bits(kept.pairs[p].aggressor_window_lo),
                bits(hand.pairs[p].aggressor_window_lo));
      EXPECT_EQ(bits(kept.pairs[p].aggressor_window_hi),
                bits(hand.pairs[p].aggressor_window_hi));
    }
  }

  // A derated corner moves the windows; the per-corner sweep must equal
  // the manual composition: per corner, re-window + single-corner
  // stream, then fold funnels and take the corner-major argmin.
  const std::vector<sta::Corner> corners = {
      sta::Corner{}, sta::Corner{"slow", 1.08, 1.04, 1.15}};
  GeneratedSweepSpec gspec;
  gspec.space = space;
  gspec.correlation = &rule;
  gspec.corners = corners;
  gspec.threads = 2;
  gspec.gen_chunk = 32;
  gspec.prune = PruneMode::kOff;
  gspec.per_corner_windows = true;
  const auto gr = f.sta->sweep(gspec);

  GenStats manual;
  std::optional<sta::GeneratedSweepResult::WorstPoint> manual_worst;
  for (size_t c = 0; c < corners.size(); ++c) {
    GeneratedSweepSpec one;
    one.space = sta::rewindow_scenario_space(*f.sta, corners[c], space);
    one.correlation = &rule;
    one.corners = {corners[c]};
    one.threads = 2;
    one.gen_chunk = 32;
    one.prune = PruneMode::kOff;
    const auto r1 = f.sta->sweep(one);
    const auto& g1 = r1.gen_stats();
    manual.generated += g1.generated;
    manual.window_killed += g1.window_killed;
    manual.correlation_killed += g1.correlation_killed;
    manual.set_killed += g1.set_killed;
    manual.evaluated += g1.evaluated;
    manual.reused += g1.reused;
    auto wp = r1.worst_point();
    wp.corner = c;
    const bool better =
        !manual_worst.has_value() || wp.slack < manual_worst->slack ||
        (wp.slack == manual_worst->slack &&
         wp.candidate < manual_worst->candidate);
    if (better) manual_worst = wp;
  }
  const auto& g = gr.gen_stats();
  EXPECT_TRUE(g.check());
  EXPECT_EQ(g.generated, manual.generated);
  EXPECT_EQ(g.window_killed, manual.window_killed);
  EXPECT_EQ(g.correlation_killed, manual.correlation_killed);
  EXPECT_EQ(g.set_killed, manual.set_killed);
  EXPECT_EQ(g.evaluated, manual.evaluated);
  EXPECT_EQ(g.reused, manual.reused);
  ASSERT_TRUE(manual_worst.has_value());
  EXPECT_EQ(bits(gr.worst_slack()), bits(manual_worst->slack));
  EXPECT_EQ(gr.worst_point().candidate, manual_worst->candidate);
  EXPECT_EQ(gr.worst_point().corner, manual_worst->corner);
  EXPECT_EQ(gr.worst_point().scenario_name, manual_worst->scenario_name);
}

TEST(Compound, MillionPointCompoundSpaceStreamsInBoundedMemory) {
  auto f = statest::random_engine(7, 12, 8, 12);
  f.sta->run();
  const auto drives = sta::make_drives_predicate(vcl013());
  const StructuralCorrelationRule rule(*f.netlist, drives);
  auto candidates = interconnect::infer_coupling_candidates(*f.netlist);
  ASSERT_GE(candidates.size(), 46u);
  candidates.resize(46);
  ScenarioSpace space = sta::make_scenario_space(
      *f.sta, *f.netlist, candidates, drives, {}, {});
  ASSERT_GE(space.pairs.size(), 46u);
  space.pairs.resize(46);
  space.max_aggressors = 2;
  // 46 + C(46,2) = 1081 events × 31 alignments × 30 strengths.
  for (int a = 0; a < 31; ++a) {
    space.alignments.push_back(-15e-9 + 1e-9 * a);
  }
  for (int s = 0; s < 30; ++s) {
    space.strengths.push_back(0.05 + 0.01 * s);
  }
  ASSERT_EQ(space.num_events(), 1081u);
  ASSERT_EQ(space.size(), 1005330u);

  GeneratedSweepSpec gspec;
  gspec.space = space;
  gspec.correlation = &rule;
  gspec.gen_chunk = 1024;
  gspec.threads = 4;
  gspec.prune = PruneMode::kSafe;
  gspec.keep_point_records = false;
  const auto gr = f.sta->sweep(gspec);

  const auto& g = gr.gen_stats();
  EXPECT_EQ(g.generated, space.size());
  EXPECT_TRUE(g.check());
  EXPECT_LE(g.peak_resident_scenarios, gspec.gen_chunk);
  EXPECT_GE(g.chunks, 1u);
  // The pre-waveform filters carry the scale: most of the million
  // candidates die before any waveform exists.
  EXPECT_GT(g.window_killed + g.correlation_killed + g.set_killed,
            g.generated / 2);

  // Eager oracle over the survivors, across thread counts.
  std::vector<uint64_t> survivors;
  sta::SweepSpec espec;
  espec.endpoint_only = true;
  espec.prune = PruneMode::kSafe;
  {
    ScenarioGenerator gen(space, &rule);
    while (const auto c = gen.next()) {
      espec.scenarios.push_back(gen.materialize(*c));
      survivors.push_back(c->index);
    }
  }
  ASSERT_FALSE(survivors.empty());
  EXPECT_EQ(g.prune_killed + g.reused + g.evaluated, survivors.size());
  for (const int threads : {1, 2, 4}) {
    espec.threads = threads;
    const auto er = f.sta->sweep(espec);
    const auto ewp = er.worst_point();
    EXPECT_EQ(bits(gr.worst_slack()), bits(ewp.slack)) << threads;
    EXPECT_EQ(gr.worst_point().candidate, survivors[ewp.scenario]);
    EXPECT_EQ(gr.worst_point().scenario_name,
              er.scenario_name(ewp.scenario));
  }
}

TEST(Compound, GenStatsCheckCatchesFunnelDrift) {
  GenStats g;
  EXPECT_TRUE(g.check());  // all-zero funnel balances
  g.generated = 100;
  g.window_killed = 60;
  g.correlation_killed = 20;
  g.set_killed = 5;
  g.prune_killed = 7;
  g.reused = 3;
  g.evaluated = 5;
  EXPECT_TRUE(g.check());
  g.set_killed = 4;  // one candidate vanishes from the funnel
  EXPECT_FALSE(g.check());
  g.set_killed = 5;
  g.generated = 101;  // or appears out of nowhere
  EXPECT_FALSE(g.check());
}

}  // namespace
}  // namespace waveletic
