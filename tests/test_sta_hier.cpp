/// \file test_sta_hier.cpp
/// Hierarchical macro-model contract tests (docs/HIER_GUIDE.md):
///  - timing inside the one expanded copy of a stitched parallel design
///    is bitwise identical to the fully-flat oracle, at several thread
///    counts, clean and under a noise scenario;
///  - extract/apply round-trip: macro NLDM tables reproduce fresh flat
///    block runs bitwise at interior extraction grid points, and a
///    single abstracted macro instance reproduces them through the
///    engine's standard table-lookup path;
///  - interface-arc delay/transition tables are monotone along the
///    output-load axis;
///  - noise-transfer sensitivities are non-negative and
///    lower_interior_bump() lowers interior bumps monotonically.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "netlist/generators.hpp"
#include "netlist/netlist.hpp"
#include "sta/engine.hpp"
#include "sta/hiergraph.hpp"
#include "sta/macromodel.hpp"
#include "sta/sweep.hpp"
#include "sta_test_util.hpp"
#include "wave/waveform.hpp"

namespace waveletic {
namespace {

using statest::constrain_ports;
using statest::vcl013;

uint64_t bits(double x) { return std::bit_cast<uint64_t>(x); }

netlist::Netlist small_block(uint64_t seed) {
  return netlist::make_random_dag(seed, 4, 4, 5);
}

/// A stitched hier design plus its fully-flat oracle, both constrained
/// identically (the stitchers emit ports in the same order, so the
/// counter-based constrain_ports assigns the same values per name).
struct Bench {
  std::unique_ptr<netlist::Netlist> block;
  sta::BlockModel model;
  std::unique_ptr<sta::HierDesign> hier;
  std::unique_ptr<netlist::Netlist> flat_nl;
  std::unique_ptr<sta::StaEngine> flat;
};

Bench make_bench(uint64_t seed, size_t copies, int expanded) {
  netlist::StitchOptions opt;
  opt.copies = copies;
  opt.topology = netlist::StitchTopology::kParallel;
  opt.expanded = expanded;

  Bench b;
  b.block = std::make_unique<netlist::Netlist>(small_block(seed));
  b.model = sta::extract_block_model(*b.block, vcl013());
  b.hier = std::make_unique<sta::HierDesign>(
      sta::HierDesign::build(*b.block, vcl013(), b.model, opt));
  b.flat_nl = std::make_unique<netlist::Netlist>(
      netlist::stitch_blocks_flat(*b.block, opt));
  b.flat = std::make_unique<sta::StaEngine>(*b.flat_nl, vcl013());
  constrain_ports(b.hier->engine(), b.hier->netlist());
  constrain_ports(*b.flat, *b.flat_nl);
  return b;
}

/// Compares every hier vertex under `prefix` against the flat engine's
/// vertex of the same name, bitwise on all four timing fields, both
/// transitions.  Returns the number of vertices compared.
size_t expect_prefix_bitwise(const sta::StaEngine& hier,
                             const sta::StaEngine& flat,
                             const std::string& prefix) {
  size_t compared = 0;
  for (size_t v = 0; v < hier.vertex_count(); ++v) {
    const std::string& name = hier.vertex_name(v);
    if (name.rfind(prefix, 0) != 0) continue;
    for (const auto rf : {sta::RiseFall::kRise, sta::RiseFall::kFall}) {
      const auto& th = hier.timing(name, rf);
      const auto& tf = flat.timing(name, rf);
      EXPECT_EQ(th.valid, tf.valid) << name << " " << to_string(rf);
      EXPECT_EQ(bits(th.arrival), bits(tf.arrival))
          << name << " " << to_string(rf) << " arrival " << th.arrival
          << " vs " << tf.arrival;
      EXPECT_EQ(bits(th.slew), bits(tf.slew))
          << name << " " << to_string(rf) << " slew";
      EXPECT_EQ(bits(th.required), bits(tf.required))
          << name << " " << to_string(rf) << " required";
    }
    ++compared;
  }
  return compared;
}

TEST(Hier, FlatVsHierBitwiseInsideExpandedCopyAtThreadCounts) {
  Bench b = make_bench(7, 3, /*expanded=*/1);
  ASSERT_EQ(b.hier->expanded_prefix(), "u1/");
  ASSERT_LT(b.hier->hier_vertex_count(), b.hier->stitched_vertex_count());

  b.flat->set_threads(1);
  b.flat->run();
  for (const int threads : {1, 2, 4}) {
    b.hier->engine().set_threads(threads);
    b.hier->engine().run();
    const size_t compared =
        expect_prefix_bitwise(b.hier->engine(), *b.flat, "u1/");
    EXPECT_GT(compared, 20u) << "threads=" << threads;
  }
}

TEST(Hier, NoisyScenarioInsideExpandedCopyStaysBitwise) {
  Bench b = make_bench(21, 3, /*expanded=*/2);
  b.flat->run();
  b.hier->engine().run();

  // Victim: the first interior net of the expanded copy with a valid
  // falling transition at a sink pin (picked from the clean flat run).
  std::string net;
  double arrival = 0.0;
  double slew = 0.0;
  for (const auto& inst : b.flat_nl->instances()) {
    if (inst.name.rfind("u2/", 0) != 0) continue;
    const auto& t = b.flat->timing(inst.name + "/A", sta::RiseFall::kFall);
    if (!t.valid || t.slew <= 0.0) continue;
    net = inst.pins.at("A");
    arrival = t.arrival;
    slew = t.slew;
    break;
  }
  ASSERT_FALSE(net.empty());

  const auto scenario = sta::make_aggressor_scenario(
      net, arrival, slew, vcl013().nom_voltage, wave::Polarity::kFalling,
      /*alignment=*/0.0, /*strength=*/0.35);
  for (const auto& e : scenario.entries) {
    b.flat->annotate_noisy_net(e.net, e.annotation.waveform,
                               e.annotation.polarity);
    b.hier->engine().annotate_noisy_net(e.net, e.annotation.waveform,
                                        e.annotation.polarity);
  }
  b.flat->run();
  b.hier->engine().set_threads(2);
  b.hier->engine().run();
  const size_t compared =
      expect_prefix_bitwise(b.hier->engine(), *b.flat, "u2/");
  EXPECT_GT(compared, 20u);
}

TEST(Hier, BlockModelExtractApplyRoundTrip) {
  const netlist::Netlist block = small_block(13);
  const sta::BlockModel model = sta::extract_block_model(block, vcl013());
  ASSERT_FALSE(model.arcs.empty());
  ASSERT_GE(model.slews.size(), 2u);
  ASSERT_GE(model.loads.size(), 2u);

  // A single all-abstracted macro instance, to exercise the engine's
  // table-lookup application of the same tables.
  netlist::StitchOptions opt;
  opt.copies = 1;
  opt.expanded = -1;
  auto hier = sta::HierDesign::build(block, vcl013(), model, opt);

  // Interior grid points only: bilinear lookup hits frac = 0 there and
  // reproduces the stored sample bitwise; the last row/column lands on
  // a frac = 1.0 lerp (<= 1 ulp) and is excluded by contract.
  const std::vector<std::pair<size_t, size_t>> points = {
      {0, 0},
      {model.slews.size() - 2, model.loads.size() - 2}};
  const std::string& from = model.arcs.front().from_port;
  for (const auto& [i, j] : points) {
    // Fresh flat characterization run at the grid point, mirroring
    // extraction: one driven input, every output loaded.
    sta::StaEngine flat(block, vcl013());
    for (const auto& p : block.ports()) {
      if (p.direction == netlist::PortDirection::kOutput) {
        flat.set_output_load(p.name, model.loads[j]);
      }
    }
    flat.set_input(from, 0.0, model.slews[i]);
    flat.run();

    auto& heng = hier.engine();
    for (const auto& p : block.ports()) {
      if (p.direction == netlist::PortDirection::kOutput) {
        heng.set_output_load("u0/" + p.name, model.loads[j]);
      }
    }
    heng.set_input("u0/" + from, 0.0, model.slews[i]);
    heng.run();

    for (const auto& a : model.arcs) {
      if (a.from_port != from) continue;
      const auto& fr = flat.timing(a.to_port, sta::RiseFall::kRise);
      const auto& ff = flat.timing(a.to_port, sta::RiseFall::kFall);
      ASSERT_TRUE(fr.valid && ff.valid) << a.to_port;
      // Extracted tables hold the flat run's arrival/slew verbatim.
      EXPECT_EQ(bits(a.arc.cell_rise.value_at(i, j)), bits(fr.arrival))
          << a.from_port << "->" << a.to_port << " @(" << i << "," << j
          << ")";
      EXPECT_EQ(bits(a.arc.cell_fall.value_at(i, j)), bits(ff.arrival));
      EXPECT_EQ(bits(a.arc.rise_transition.value_at(i, j)), bits(fr.slew));
      EXPECT_EQ(bits(a.arc.fall_transition.value_at(i, j)), bits(ff.slew));

      // And the macro instance reproduces them through the engine's
      // standard NLDM lookup path.
      const auto& hr = heng.timing("u0/" + a.to_port, sta::RiseFall::kRise);
      const auto& hf = heng.timing("u0/" + a.to_port, sta::RiseFall::kFall);
      ASSERT_TRUE(hr.valid && hf.valid) << a.to_port;
      EXPECT_EQ(bits(hr.arrival), bits(fr.arrival))
          << "macro rise arrival " << a.to_port;
      EXPECT_EQ(bits(hf.arrival), bits(ff.arrival))
          << "macro fall arrival " << a.to_port;
      EXPECT_EQ(bits(hr.slew), bits(fr.slew)) << "macro rise slew";
      EXPECT_EQ(bits(hf.slew), bits(ff.slew)) << "macro fall slew";
    }
  }
}

TEST(Hier, InterfaceArcTablesMonotoneAlongLoadAxis) {
  const netlist::Netlist block = small_block(31);
  const sta::BlockModel model = sta::extract_block_model(block, vcl013());
  ASSERT_FALSE(model.arcs.empty());

  // Every path into an output port exits through that port's single
  // driver gate, so a larger output load slows every path: delay AND
  // output slew are monotone along the load axis at every input slew.
  // No slew-axis assertion — multi-stage port-to-port delay measured
  // at 50% crossings can legitimately shrink with a slower input edge,
  // and the winning max-arrival path (whose edge the output slew
  // reports) can switch to a sharper one.
  const auto check = [](const liberty::NldmTable& t, const char* what) {
    const size_t n1 = t.index_1().size();
    const size_t n2 = t.index_2().size();
    for (size_t i = 0; i < n1; ++i) {
      for (size_t j = 0; j + 1 < n2; ++j) {
        EXPECT_GE(t.value_at(i, j + 1), t.value_at(i, j))
            << what << " not monotone in load at (" << i << "," << j << ")";
      }
    }
  };
  for (const auto& a : model.arcs) {
    check(a.arc.cell_rise, "cell_rise");
    check(a.arc.cell_fall, "cell_fall");
    check(a.arc.rise_transition, "rise_transition");
    check(a.arc.fall_transition, "fall_transition");
  }
}

TEST(Hier, NoiseTransfersLowerOntoInterfaceMonotonically) {
  Bench b = make_bench(17, 2, /*expanded=*/1);
  ASSERT_FALSE(b.model.transfers.empty());
  for (const auto& t : b.model.transfers) {
    EXPECT_GE(t.sensitivity, 0.0) << t.net << "->" << t.to_port;
  }

  b.hier->engine().run();
  // Copy 0 is abstracted; input-port nets are always characterized.
  std::string probe;
  for (const auto& p : b.block->ports()) {
    if (p.direction == netlist::PortDirection::kInput) {
      probe = p.name;
      break;
    }
  }
  ASSERT_FALSE(probe.empty());

  const auto s1 = b.hier->lower_interior_bump(0, probe, 0.2);
  const auto s2 = b.hier->lower_interior_bump(0, probe, 0.5);
  ASSERT_FALSE(s1.entries.empty());
  ASSERT_EQ(s1.entries.size(), s2.entries.size());

  // Clean interface baselines, then each lowered scenario in turn: the
  // pushed-out arrival grows (weakly) with the bump amplitude.
  auto arrivals = [&](const sta::NoiseScenario* s) {
    auto& eng = b.hier->engine();
    eng.clear_noisy_nets();
    if (s != nullptr) {
      for (const auto& e : s->entries) {
        eng.annotate_noisy_net(e.net, e.annotation.waveform,
                               e.annotation.polarity);
      }
    }
    eng.run();
    std::vector<double> out;
    for (const auto& e : s1.entries) {
      out.push_back(eng.timing(e.net, sta::RiseFall::kFall).arrival);
    }
    return out;
  };
  const auto base = arrivals(nullptr);
  const auto low = arrivals(&s1);
  const auto high = arrivals(&s2);
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_GE(low[i], base[i] - 1e-15) << s1.entries[i].net;
    EXPECT_GE(high[i], low[i] - 1e-15) << s1.entries[i].net;
  }

  // Expanded copies must be annotated directly, not lowered.
  EXPECT_THROW((void)b.hier->lower_interior_bump(1, probe, 0.2),
               std::invalid_argument);
  EXPECT_THROW((void)b.hier->lower_interior_bump(0, "no_such_net", 0.2),
               std::invalid_argument);
}

TEST(Hier, CarveBlockFromPartitionExtracts) {
  auto f = statest::random_engine(5);
  f.sta->prepare();
  const auto& parts = f.sta->partitions();
  ASSERT_GT(parts.size(), 0u);

  // Find a partition whose carve exposes both port directions (needed
  // for characterization); with the random DAG the first usually does.
  for (size_t k = 0; k < parts.size(); ++k) {
    const auto insts = sta::partition_instances(*f.sta, k);
    if (insts.empty()) continue;
    const auto carved =
        sta::carve_block(*f.netlist, vcl013(), insts, "part");
    carved.validate();
    bool has_in = false;
    bool has_out = false;
    for (const auto& p : carved.ports()) {
      (p.direction == netlist::PortDirection::kInput ? has_in : has_out) =
          true;
    }
    if (!has_in || !has_out) continue;
    const auto model = sta::extract_block_model(carved, vcl013());
    EXPECT_FALSE(model.ports.empty());
    EXPECT_FALSE(model.arcs.empty());
    return;  // one successful carve+extract is the contract
  }
  FAIL() << "no partition carved into a characterizable block";
}

}  // namespace
}  // namespace waveletic
