// Physics and engine tests for the transient simulator: closed-form RC
// responses, integrator convergence order, MOSFET model properties,
// CMOS inverter behaviour, capacitive coupling.

#include <gtest/gtest.h>

#include <cmath>

#include "spice/devices.hpp"
#include "spice/engine.hpp"
#include "util/error.hpp"
#include "wave/metrics.hpp"

namespace sp = waveletic::spice;
namespace wv = waveletic::wave;
namespace wu = waveletic::util;

namespace {

constexpr double kVdd = 1.2;

sp::MosfetModel nmos_model() {
  sp::MosfetModel m;
  m.name = "nmos";
  m.pmos = false;
  m.vth = 0.35;
  m.alpha = 1.3;
  m.kc = 6.0e2;
  m.kv = 0.9;
  m.lambda = 0.05;
  return m;
}

sp::MosfetModel pmos_model() {
  sp::MosfetModel m = nmos_model();
  m.name = "pmos";
  m.pmos = true;
  m.vth = 0.32;
  m.kc = 2.7e2;
  return m;
}

/// Adds a transistor-level inverter between in/out with explicit gate
/// and junction capacitances; returns nothing (devices live in ckt).
void add_inverter(sp::Circuit& ckt, const std::string& name,
                  const std::string& in, const std::string& out,
                  const std::string& vdd_node, double wn, double wp) {
  const auto n_in = ckt.node(in);
  const auto n_out = ckt.node(out);
  const auto n_vdd = ckt.node(vdd_node);
  const auto gnd = sp::kGround;
  const auto nm = nmos_model();
  const auto pm = pmos_model();
  ckt.emplace<sp::Mosfet>(name + ".mn", n_out, n_in, gnd, gnd, nm, wn);
  ckt.emplace<sp::Mosfet>(name + ".mp", n_out, n_in, n_vdd, n_vdd, pm, wp);
  // Lumped device capacitances.
  ckt.emplace<sp::Capacitor>(name + ".cgs", n_in, gnd,
                             nm.cgs_per_w * wn + pm.cgs_per_w * wp);
  ckt.emplace<sp::Capacitor>(name + ".cgd", n_in, n_out,
                             nm.cgd_per_w * wn + pm.cgd_per_w * wp);
  ckt.emplace<sp::Capacitor>(name + ".cdb", n_out, gnd,
                             nm.cdb_per_w * wn + pm.cdb_per_w * wp);
}

void add_vdd(sp::Circuit& ckt, const std::string& node) {
  ckt.emplace<sp::VoltageSource>("vdd_src", ckt.node(node), sp::kGround,
                                 std::make_unique<sp::DcStimulus>(kVdd));
}

}  // namespace

// ---------------------------------------------------------------------------
// Linear circuits against closed forms
// ---------------------------------------------------------------------------

TEST(SpiceDc, ResistorDividerHitsExactRatio) {
  sp::Circuit ckt;
  const auto top = ckt.node("top");
  const auto mid = ckt.node("mid");
  ckt.emplace<sp::VoltageSource>("v1", top, sp::kGround,
                                 std::make_unique<sp::DcStimulus>(1.0));
  ckt.emplace<sp::Resistor>("r1", top, mid, 1000.0);
  ckt.emplace<sp::Resistor>("r2", mid, sp::kGround, 3000.0);
  const auto x = sp::dc_operating_point(ckt);
  EXPECT_NEAR(x[static_cast<size_t>(mid - 1)], 0.75, 1e-9);
}

TEST(SpiceTransient, RcChargeMatchesExponential) {
  // 1kΩ, 1pF, step at t=0 from the DC value 0 to 1V: v(t)=1-exp(-t/τ).
  sp::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.emplace<sp::VoltageSource>(
      "vin", in, sp::kGround,
      std::make_unique<sp::PwlStimulus>(std::vector<sp::PwlStimulus::Point>{
          {0.0, 0.0}, {1e-12, 1.0}}));
  ckt.emplace<sp::Resistor>("r", in, out, 1000.0);
  ckt.emplace<sp::Capacitor>("c", out, sp::kGround, 1e-12);

  sp::TransientSpec spec;
  spec.t_stop = 6e-9;
  spec.dt = 1e-12;
  const auto res = sp::transient(ckt, spec);
  const auto& w = res.waveform("out");
  const double tau = 1e-9;
  for (double t : {0.5e-9, 1e-9, 2e-9, 4e-9}) {
    const double expected = 1.0 - std::exp(-(t - 1e-12) / tau);
    EXPECT_NEAR(w.at(t), expected, 4e-3) << "t=" << t;
  }
}

TEST(SpiceTransient, RcDelayAt50PercentIsLn2Tau) {
  sp::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.emplace<sp::VoltageSource>(
      "vin", in, sp::kGround,
      std::make_unique<sp::PwlStimulus>(std::vector<sp::PwlStimulus::Point>{
          {0.0, 0.0}, {1e-12, 1.0}}));
  ckt.emplace<sp::Resistor>("r", in, out, 2000.0);
  ckt.emplace<sp::Capacitor>("c", out, sp::kGround, 0.5e-12);
  sp::TransientSpec spec;
  spec.t_stop = 8e-9;
  spec.dt = 0.5e-12;
  const auto res = sp::transient(ckt, spec);
  const auto cross = res.waveform("out").first_crossing(0.5);
  ASSERT_TRUE(cross.has_value());
  EXPECT_NEAR(*cross, std::log(2.0) * 1e-9, 5e-12);
}

TEST(SpiceTransient, TrapezoidalIsSecondOrder) {
  // Global error of the RC response at fixed t should drop ~4x when dt
  // halves for trapezoidal, ~2x for backward Euler.
  const auto run_error = [&](sp::Integration method, double dt) {
    sp::Circuit ckt;
    const auto in = ckt.node("in");
    const auto out = ckt.node("out");
    ckt.emplace<sp::VoltageSource>(
        "vin", in, sp::kGround,
        std::make_unique<sp::RampStimulus>(0.5e-9, 0.2e-9, 0.0, 1.0, true));
    ckt.emplace<sp::Resistor>("r", in, out, 1000.0);
    ckt.emplace<sp::Capacitor>("c", out, sp::kGround, 1e-12);
    sp::TransientSpec spec;
    spec.t_stop = 3e-9;
    spec.dt = dt;
    spec.method = method;
    const auto res = sp::transient(ckt, spec);
    // Reference: very fine trapezoidal run.
    sp::Circuit ref_ckt;
    const auto rin = ref_ckt.node("in");
    const auto rout = ref_ckt.node("out");
    ref_ckt.emplace<sp::VoltageSource>(
        "vin", rin, sp::kGround,
        std::make_unique<sp::RampStimulus>(0.5e-9, 0.2e-9, 0.0, 1.0, true));
    ref_ckt.emplace<sp::Resistor>("r", rin, rout, 1000.0);
    ref_ckt.emplace<sp::Capacitor>("c", rout, sp::kGround, 1e-12);
    sp::TransientSpec ref_spec = spec;
    ref_spec.dt = 0.125e-12;
    ref_spec.method = sp::Integration::kTrapezoidal;
    const auto ref = sp::transient(ref_ckt, ref_spec);
    double err = 0.0;
    for (double t : {0.8e-9, 1.2e-9, 1.6e-9, 2.4e-9}) {
      err = std::max(err, std::fabs(res.waveform("out").at(t) -
                                    ref.waveform("out").at(t)));
    }
    return err;
  };

  const double trap_8 = run_error(sp::Integration::kTrapezoidal, 8e-12);
  const double trap_4 = run_error(sp::Integration::kTrapezoidal, 4e-12);
  const double be_8 = run_error(sp::Integration::kBackwardEuler, 8e-12);
  const double be_4 = run_error(sp::Integration::kBackwardEuler, 4e-12);
  EXPECT_LT(trap_4, trap_8 / 2.5);  // ~4x expected
  EXPECT_LT(be_4, be_8 / 1.6);      // ~2x expected
  EXPECT_LT(trap_8, be_8);          // trap strictly more accurate here
}

TEST(SpiceTransient, CouplingCapInjectsNoiseOnQuietNet) {
  // Quiet victim held by a resistor to ground; aggressor steps through a
  // coupling cap: the victim must bump and then recover.
  sp::Circuit ckt;
  const auto agg = ckt.node("agg");
  const auto vic = ckt.node("vic");
  ckt.emplace<sp::VoltageSource>(
      "vagg", agg, sp::kGround,
      std::make_unique<sp::RampStimulus>(1e-9, 0.15e-9, 0.0, kVdd, true));
  ckt.emplace<sp::Capacitor>("cm", agg, vic, 50e-15);
  ckt.emplace<sp::Resistor>("rv", vic, sp::kGround, 1000.0);
  ckt.emplace<sp::Capacitor>("cv", vic, sp::kGround, 20e-15);

  sp::TransientSpec spec;
  spec.t_stop = 4e-9;
  spec.dt = 1e-12;
  const auto res = sp::transient(ckt, spec);
  const auto& v = res.waveform("vic");
  EXPECT_GT(v.max_value(), 0.1);            // visible bump
  EXPECT_LT(std::fabs(v.at(4e-9)), 0.02);   // recovers to quiet level
  EXPECT_LT(std::fabs(v.at(0.5e-9)), 1e-3); // quiet before the aggressor
}

TEST(SpiceTransient, ChargeConservationAcrossFloatingCapPair) {
  // Two series caps from a stepped source: the middle node settles at
  // the capacitive divider value.
  sp::Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  ckt.emplace<sp::VoltageSource>(
      "vin", in, sp::kGround,
      std::make_unique<sp::RampStimulus>(0.2e-9, 0.1e-9, 0.0, 1.0, true));
  ckt.emplace<sp::Capacitor>("c1", in, mid, 3e-15);
  ckt.emplace<sp::Capacitor>("c2", mid, sp::kGround, 1e-15);
  sp::TransientSpec spec;
  spec.t_stop = 1e-9;
  spec.dt = 0.5e-12;
  const auto res = sp::transient(ckt, spec);
  EXPECT_NEAR(res.waveform("mid").at(1e-9), 0.75, 5e-3);
}

// ---------------------------------------------------------------------------
// MOSFET model properties
// ---------------------------------------------------------------------------

TEST(Mosfet, CutoffBelowThreshold) {
  sp::Circuit ckt;
  sp::Mosfet m("m1", ckt.node("d"), ckt.node("g"), sp::kGround, sp::kGround,
               nmos_model(), 1e-6);
  const auto op = m.evaluate(1.2, 0.2, 0.0);
  EXPECT_DOUBLE_EQ(op.id, 0.0);
  EXPECT_DOUBLE_EQ(op.gm, 0.0);
}

TEST(Mosfet, ContinuousAcrossSaturationBoundary) {
  sp::Circuit ckt;
  sp::Mosfet m("m1", ckt.node("d"), ckt.node("g"), sp::kGround, sp::kGround,
               nmos_model(), 1e-6);
  const double vgs = 1.0;
  const double vdsat = nmos_model().vdsat(vgs - nmos_model().vth);
  const double below = m.evaluate(vdsat - 1e-9, vgs, 0.0).id;
  const double above = m.evaluate(vdsat + 1e-9, vgs, 0.0).id;
  EXPECT_NEAR(below, above, std::fabs(above) * 1e-6);
  // gds is continuous too (linear-region derivative -> lambda term).
  const double g_below = m.evaluate(vdsat - 1e-9, vgs, 0.0).gds;
  const double g_above = m.evaluate(vdsat + 1e-9, vgs, 0.0).gds;
  EXPECT_NEAR(g_below, g_above, std::max(1e-9, g_above) * 0.05 + 1e-7);
}

TEST(Mosfet, CurrentMonotoneInVgs) {
  sp::Circuit ckt;
  sp::Mosfet m("m1", ckt.node("d"), ckt.node("g"), sp::kGround, sp::kGround,
               nmos_model(), 1e-6);
  double prev = -1.0;
  for (double vgs = 0.0; vgs <= 1.2001; vgs += 0.05) {
    const double id = m.evaluate(1.2, vgs, 0.0).id;
    EXPECT_GE(id, prev - 1e-15);
    prev = id;
  }
}

TEST(Mosfet, SymmetricConductionFlipsSign) {
  sp::Circuit ckt;
  sp::Mosfet m("m1", ckt.node("d"), ckt.node("g"), sp::kGround, sp::kGround,
               nmos_model(), 1e-6);
  // Same |vds| with roles swapped must give equal magnitude currents
  // when the gate overdrive is referenced to the conducting source.
  const double fwd = m.evaluate(0.1, 1.2, 0.0).id;
  const double rev = m.evaluate(-0.1, 1.2 - 0.1, 0.0).id;
  EXPECT_GT(fwd, 0.0);
  EXPECT_LT(rev, 0.0);
  EXPECT_NEAR(fwd, -rev, fwd * 1e-9);
}

TEST(Mosfet, PmosMirrorsNmos) {
  sp::Circuit ckt;
  auto nm = nmos_model();
  auto pm = nm;
  pm.pmos = true;
  sp::Mosfet n("mn", ckt.node("d"), ckt.node("g"), sp::kGround, sp::kGround,
               nm, 1e-6);
  sp::Mosfet p("mp", ckt.node("d2"), ckt.node("g2"), sp::kGround,
               sp::kGround, pm, 1e-6);
  const auto no = n.evaluate(0.6, 1.0, 0.0);
  const auto po = p.evaluate(-0.6, -1.0, 0.0);
  EXPECT_NEAR(no.id, -po.id, std::fabs(no.id) * 1e-12);
  EXPECT_NEAR(no.gm, po.gm, std::fabs(no.gm) * 1e-12);
  EXPECT_NEAR(no.gds, po.gds, std::fabs(no.gds) * 1e-12);
}

TEST(Mosfet, GmMatchesFiniteDifference) {
  sp::Circuit ckt;
  sp::Mosfet m("m1", ckt.node("d"), ckt.node("g"), sp::kGround, sp::kGround,
               nmos_model(), 1e-6);
  for (double vds : {0.05, 0.3, 0.8, 1.2}) {
    for (double vgs : {0.5, 0.8, 1.2}) {
      const double h = 1e-7;
      const double base = m.evaluate(vds, vgs, 0.0).id;
      const double bump = m.evaluate(vds, vgs + h, 0.0).id;
      const double gm_fd = (bump - base) / h;
      const double gm = m.evaluate(vds, vgs, 0.0).gm;
      EXPECT_NEAR(gm, gm_fd, std::max(1e-9, gm_fd) * 1e-3)
          << "vds=" << vds << " vgs=" << vgs;
    }
  }
}

TEST(Mosfet, GdsMatchesFiniteDifference) {
  sp::Circuit ckt;
  sp::Mosfet m("m1", ckt.node("d"), ckt.node("g"), sp::kGround, sp::kGround,
               nmos_model(), 1e-6);
  for (double vds : {0.05, 0.3, 0.8, 1.2}) {
    const double vgs = 1.0;
    const double h = 1e-7;
    const double base = m.evaluate(vds, vgs, 0.0).id;
    const double bump = m.evaluate(vds + h, vgs, 0.0).id;
    const double gds_fd = (bump - base) / h;
    const double gds = m.evaluate(vds, vgs, 0.0).gds;
    EXPECT_NEAR(gds, gds_fd, std::max(1e-9, gds_fd) * 1e-3) << "vds=" << vds;
  }
}

// ---------------------------------------------------------------------------
// CMOS inverter behaviour
// ---------------------------------------------------------------------------

TEST(Inverter, DcTransferEndpoints) {
  sp::Circuit ckt;
  add_vdd(ckt, "vdd");
  add_inverter(ckt, "inv", "in", "out", "vdd", 0.52e-6, 1.04e-6);
  auto& vin = ckt.emplace<sp::VoltageSource>(
      "vin", ckt.find_node("in"), sp::kGround,
      std::make_unique<sp::DcStimulus>(0.0));

  const auto out_idx = static_cast<size_t>(ckt.find_node("out") - 1);
  auto x_low = sp::dc_operating_point(ckt);
  EXPECT_NEAR(x_low[out_idx], kVdd, 1e-3);

  vin.set_stimulus(std::make_unique<sp::DcStimulus>(kVdd));
  auto x_high = sp::dc_operating_point(ckt);
  EXPECT_NEAR(x_high[out_idx], 0.0, 1e-3);
}

TEST(Inverter, TransientInvertsAndDelays) {
  sp::Circuit ckt;
  add_vdd(ckt, "vdd");
  add_inverter(ckt, "inv", "in", "out", "vdd", 0.52e-6, 1.04e-6);
  ckt.emplace<sp::Capacitor>("cl", ckt.find_node("out"), sp::kGround,
                             10e-15);
  ckt.emplace<sp::VoltageSource>(
      "vin", ckt.find_node("in"), sp::kGround,
      std::make_unique<sp::RampStimulus>(1e-9, 150e-12, 0.0, kVdd, true));

  sp::TransientSpec spec;
  spec.t_stop = 3e-9;
  spec.dt = 1e-12;
  const auto res = sp::transient(ckt, spec);
  const auto& out = res.waveform("out");
  EXPECT_NEAR(out.at(0.2e-9), kVdd, 0.02);  // starts high
  EXPECT_NEAR(out.at(3e-9), 0.0, 0.02);     // ends low
  const auto d = wv::gate_delay_50(res.waveform("in"), wv::Polarity::kRising,
                                   out, wv::Polarity::kFalling, kVdd);
  ASSERT_TRUE(d.has_value());
  EXPECT_GT(*d, 0.0);
  EXPECT_LT(*d, 300e-12);
}

TEST(Inverter, DelayGrowsWithLoad) {
  const auto delay_with_load = [&](double cl) {
    sp::Circuit ckt;
    add_vdd(ckt, "vdd");
    add_inverter(ckt, "inv", "in", "out", "vdd", 0.52e-6, 1.04e-6);
    ckt.emplace<sp::Capacitor>("cl", ckt.find_node("out"), sp::kGround, cl);
    ckt.emplace<sp::VoltageSource>(
        "vin", ckt.find_node("in"), sp::kGround,
        std::make_unique<sp::RampStimulus>(1e-9, 150e-12, 0.0, kVdd, true));
    sp::TransientSpec spec;
    spec.t_stop = 6e-9;
    spec.dt = 1e-12;
    const auto res = sp::transient(ckt, spec);
    const auto d =
        wv::gate_delay_50(res.waveform("in"), wv::Polarity::kRising,
                          res.waveform("out"), wv::Polarity::kFalling, kVdd);
    return d.value();
  };
  const double d_small = delay_with_load(5e-15);
  const double d_big = delay_with_load(50e-15);
  EXPECT_GT(d_big, 1.5 * d_small);
}

TEST(Inverter, ChainPropagatesBothPolarities) {
  // Two cascaded inverters: final output follows the input direction.
  sp::Circuit ckt;
  add_vdd(ckt, "vdd");
  add_inverter(ckt, "i1", "in", "n1", "vdd", 0.52e-6, 1.04e-6);
  add_inverter(ckt, "i2", "n1", "n2", "vdd", 2.08e-6, 4.16e-6);
  ckt.emplace<sp::Capacitor>("cl", ckt.find_node("n2"), sp::kGround, 20e-15);
  ckt.emplace<sp::VoltageSource>(
      "vin", ckt.find_node("in"), sp::kGround,
      std::make_unique<sp::RampStimulus>(1e-9, 150e-12, 0.0, kVdd, true));
  sp::TransientSpec spec;
  spec.t_stop = 5e-9;
  spec.dt = 1e-12;
  const auto res = sp::transient(ckt, spec);
  EXPECT_NEAR(res.waveform("n2").at(0.2e-9), 0.0, 0.05);
  EXPECT_NEAR(res.waveform("n2").at(5e-9), kVdd, 0.05);
  const auto d =
      wv::gate_delay_50(res.waveform("in"), wv::Polarity::kRising,
                        res.waveform("n2"), wv::Polarity::kRising, kVdd);
  ASSERT_TRUE(d.has_value());
  EXPECT_GT(*d, 0.0);
}

TEST(Engine, ThrowsOnBadSpec) {
  sp::Circuit ckt;
  ckt.emplace<sp::Resistor>("r", ckt.node("a"), sp::kGround, 1.0);
  sp::TransientSpec spec;
  spec.dt = 0.0;
  EXPECT_THROW((void)sp::transient(ckt, spec), wu::Error);
}

TEST(Engine, ProbeSubsetOnlyRecordsRequested) {
  sp::Circuit ckt;
  const auto a = ckt.node("a");
  ckt.emplace<sp::VoltageSource>("v", a, sp::kGround,
                                 std::make_unique<sp::DcStimulus>(1.0));
  ckt.emplace<sp::Resistor>("r", a, ckt.node("b"), 1.0);
  ckt.emplace<sp::Resistor>("r2", ckt.node("b"), sp::kGround, 1.0);
  sp::TransientSpec spec;
  spec.t_stop = 1e-10;
  spec.dt = 1e-12;
  spec.probes = {"b"};
  const auto res = sp::transient(ckt, spec);
  EXPECT_TRUE(res.has("b"));
  EXPECT_FALSE(res.has("a"));
  EXPECT_THROW((void)res.waveform("a"), wu::Error);
}

TEST(Circuit, NodeRegistryAliasesGround) {
  sp::Circuit ckt;
  EXPECT_EQ(ckt.node("0"), sp::kGround);
  EXPECT_EQ(ckt.node("gnd"), sp::kGround);
  EXPECT_EQ(ckt.node("GND"), sp::kGround);
  const auto a = ckt.node("N1");
  EXPECT_EQ(ckt.node("n1"), a);  // case-insensitive
  EXPECT_THROW((void)ckt.find_node("missing"), wu::Error);
  EXPECT_TRUE(ckt.has_node("n1"));
}

TEST(Circuit, DeviceLookupAndDescribe) {
  sp::Circuit ckt;
  ckt.emplace<sp::Resistor>("r1", ckt.node("a"), sp::kGround, 5.0);
  EXPECT_NE(ckt.find_device("R1"), nullptr);
  EXPECT_EQ(ckt.find_device("nope"), nullptr);
  EXPECT_NE(ckt.describe().find("r1"), std::string::npos);
}

TEST(Devices, RejectNonPhysicalValues) {
  sp::Circuit ckt;
  EXPECT_THROW(ckt.emplace<sp::Resistor>("r", ckt.node("a"), sp::kGround,
                                         -5.0),
               wu::Error);
  EXPECT_THROW(ckt.emplace<sp::Capacitor>("c", ckt.node("a"), sp::kGround,
                                          0.0),
               wu::Error);
}

// Parameterized: inverter delay is finite and positive across drive
// strengths (sanity sweep ahead of library characterization).
class DriveSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(DriveSweepTest, InverterDelayPositiveAndBounded) {
  const double scale = GetParam();
  sp::Circuit ckt;
  add_vdd(ckt, "vdd");
  add_inverter(ckt, "inv", "in", "out", "vdd", 0.52e-6 * scale,
               1.04e-6 * scale);
  ckt.emplace<sp::Capacitor>("cl", ckt.find_node("out"), sp::kGround,
                             4e-15 * scale + 4e-15);
  ckt.emplace<sp::VoltageSource>(
      "vin", ckt.find_node("in"), sp::kGround,
      std::make_unique<sp::RampStimulus>(0.8e-9, 150e-12, 0.0, kVdd, true));
  sp::TransientSpec spec;
  spec.t_stop = 3e-9;
  spec.dt = 1e-12;
  const auto res = sp::transient(ckt, spec);
  const auto d =
      wv::gate_delay_50(res.waveform("in"), wv::Polarity::kRising,
                        res.waveform("out"), wv::Polarity::kFalling, kVdd);
  ASSERT_TRUE(d.has_value());
  EXPECT_GT(*d, 0.0);
  EXPECT_LT(*d, 500e-12);
}

INSTANTIATE_TEST_SUITE_P(Drives, DriveSweepTest,
                         ::testing::Values(1.0, 4.0, 16.0, 64.0));
